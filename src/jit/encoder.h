/**
 * @file
 * A small x86-64 assembler: just the encodings the HVX-to-host
 * lowerer emits, appended to a byte vector.
 *
 * The shape follows the classic IR → machine-IR → encoder JIT
 * pipeline: lower.cc is the machine-IR layer (it decides which
 * instructions to emit), and this class is the encoder proper — one
 * method per instruction form, each writing REX/ModRM/SIB/immediate
 * bytes. Memory operands are always [base + disp32] or
 * [base + index*8 + disp32]: uniform encodings keep the emitter
 * simple, and code size is irrelevant next to correctness here.
 *
 * Everything emitted is position-independent straight-line code — no
 * jumps, no labels, no relocations — so sealing into an ExecBuffer is
 * a plain copy.
 */
#ifndef RAKE_JIT_ENCODER_H
#define RAKE_JIT_ENCODER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rake::jit {

/** General-purpose registers; values are the hardware encodings. */
enum class Reg : uint8_t {
    rax = 0,
    rcx = 1,
    rdx = 2,
    rbx = 3,
    rsp = 4,
    rbp = 5,
    rsi = 6,
    rdi = 7,
    r8 = 8,
    r9 = 9,
    r10 = 10,
    r11 = 11,
    r12 = 12,
    r13 = 13,
    r14 = 14,
    r15 = 15,
};

/** SSE/AVX registers (xmm0..xmm15 / ymm0..ymm15). */
enum class Vreg : uint8_t {
    xmm0 = 0,
    xmm1 = 1,
    xmm2 = 2,
    xmm3 = 3,
};

/** Condition codes (the low nibble of the 0F 4x / 0F 9x opcodes). */
enum class Cond : uint8_t {
    e = 0x4,  ///< equal
    ne = 0x5, ///< not equal
    l = 0xC,  ///< signed less
    ge = 0xD, ///< signed greater-or-equal
    le = 0xE, ///< signed less-or-equal
    g = 0xF,  ///< signed greater
};

/** Packed 64-bit SSE/AVX ALU ops (opcode byte after 66 0F). */
enum class VecOp : uint8_t {
    paddq = 0xD4,
    psubq = 0xFB,
    pand = 0xDB,
    por = 0xEB,
    pxor = 0xEF,
};

class Assembler
{
  public:
    const std::vector<uint8_t> &code() const { return code_; }
    size_t size() const { return code_.size(); }

    // --- stack / control ---
    void push(Reg r);
    void pop(Reg r);
    void ret();

    // --- 64-bit moves ---
    void mov(Reg dst, Reg src);
    void mov_imm64(Reg dst, int64_t imm);
    /** mov dst, [base + disp] */
    void load(Reg dst, Reg base, int32_t disp);
    /** mov [base + disp], src */
    void store(Reg base, int32_t disp, Reg src);
    /** mov dst, [base + index*8 + disp] */
    void load_index8(Reg dst, Reg base, Reg index, int32_t disp = 0);
    /** lea dst, [base + disp] */
    void lea(Reg dst, Reg base, int32_t disp);
    /** lea dst, [base + index*8 + disp] */
    void lea_index8(Reg dst, Reg base, Reg index, int32_t disp = 0);

    // --- 64-bit ALU (dst op= src) ---
    void add(Reg dst, Reg src);
    void sub(Reg dst, Reg src);
    void and_(Reg dst, Reg src);
    void or_(Reg dst, Reg src);
    void xor_(Reg dst, Reg src);
    void imul(Reg dst, Reg src);
    void cmp(Reg a, Reg b);
    void test(Reg a, Reg b);
    void not_(Reg r);
    void add_imm32(Reg dst, int32_t imm);

    // --- shifts by compile-time amounts ---
    void shl_imm(Reg r, int n);
    void shr_imm(Reg r, int n);
    void sar_imm(Reg r, int n);

    // --- conditionals ---
    void cmov(Cond cc, Reg dst, Reg src);
    /** setcc al; the caller zeroes rax first. */
    void setcc_al(Cond cc);

    // --- SSE2 (128-bit, two int64 lanes) ---
    void movdqu_load(Vreg dst, Reg base, int32_t disp);
    void movdqu_store(Reg base, int32_t disp, Vreg src);
    void sse_op(VecOp op, Vreg dst, Vreg src);
    void sse_op_mem(VecOp op, Vreg dst, Reg base, int32_t disp);

    // --- AVX2 (256-bit, four int64 lanes; VEX-encoded) ---
    void vmovdqu_load(Vreg dst, Reg base, int32_t disp);
    void vmovdqu_store(Reg base, int32_t disp, Vreg src);
    void avx_op(VecOp op, Vreg dst, Vreg src1, Vreg src2);
    void avx_op_mem(VecOp op, Vreg dst, Vreg src1, Reg base,
                    int32_t disp);
    void vzeroupper();

  private:
    void byte(uint8_t b) { code_.push_back(b); }
    void dword(int32_t v);
    void qword(int64_t v);
    void rex(bool w, uint8_t reg, uint8_t index, uint8_t rm);
    /** ModRM mod=11 register-direct form. */
    void modrm_reg(uint8_t reg, uint8_t rm);
    /** ModRM mod=10 [base + disp32] form (SIB when base needs it). */
    void modrm_mem(uint8_t reg, Reg base, int32_t disp);
    /** ModRM [base + index*8 + disp32] form. */
    void modrm_sib8(uint8_t reg, Reg base, Reg index, int32_t disp);
    void vex3(uint8_t reg, uint8_t base_rm, uint8_t vvvv, bool l256,
              uint8_t pp);

    std::vector<uint8_t> code_;
};

} // namespace rake::jit

#endif // RAKE_JIT_ENCODER_H
