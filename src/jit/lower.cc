/**
 * @file
 * HVX DAG -> x86-64 lowering.
 *
 * The machine-IR layer of the JIT: walks the selected instruction DAG
 * in topological order, gives every node a run of int64 arena slots
 * (one per lane, the interpreters' carrier representation), and emits
 * straight-line code computing each node's lanes from its operands'
 * slots. Lane counts and immediates are compile-time constants, so
 * every HVX index map (deint/ileave/cat/align/ror) reduces to a
 * constant displacement — no loops, no tables, no relocations.
 *
 * Scalar lowering mirrors base/arith.h operation by operation (the
 * bit-identity contract the differential tests and the fuzz oracle
 * pin down). Element-wise wrap ops additionally take an SSE2/AVX2
 * packed path over 2/4 int64 lanes per instruction, with a scalar
 * tail; width masking uses the ((v & mask) ^ sign) - sign identity.
 */
#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "base/arith.h"
#include "jit/encoder.h"
#include "jit/jit.h"
#include "support/error.h"

namespace rake::jit {

static_assert(offsetof(Frame, x) == 0, "Frame layout");
static_assert(offsetof(Frame, y) == 8, "Frame layout");
static_assert(offsetof(Frame, bufs) == 16, "Frame layout");
static_assert(offsetof(Frame, arena) == 24, "Frame layout");
static_assert(offsetof(BufferDesc, data) == 0, "BufferDesc layout");
static_assert(offsetof(BufferDesc, width) == 8, "BufferDesc layout");
static_assert(offsetof(BufferDesc, height) == 16, "BufferDesc layout");
static_assert(offsetof(BufferDesc, x0) == 24, "BufferDesc layout");
static_assert(offsetof(BufferDesc, y0) == 32, "BufferDesc layout");
static_assert(sizeof(BufferDesc) == 40, "BufferDesc layout");

namespace {

// Pinned registers for the whole function body.
constexpr Reg kArena = Reg::rbx;
constexpr Reg kBufs = Reg::r12;
constexpr Reg kX = Reg::r14;
constexpr Reg kY = Reg::r15;

/** Output lane -> input lane of a deinterleaved register pair. */
int
deint(int i, int L)
{
    if (L % 2 != 0)
        return i; // degenerate width; no pair structure
    const int h = L / 2;
    return i < h ? 2 * i : 2 * (i - h) + 1;
}

} // namespace

class Lowerer
{
  public:
    explicit Lowerer(SimdLevel simd) : simd_(simd) {}

    std::unique_ptr<Program> lower(const hvx::InstrPtr &root);

  private:
    using Instr = hvx::Instr;

    void collect(const hvx::InstrPtr &n);
    void emit_node(const Instr &n);
    void emit_vread(const Instr &n);
    void emit_vbitcast(const Instr &n);

    // --- slot addressing ---
    int32_t
    disp(const Instr *node, int lane)
    {
        auto it = slot_.find(node);
        RAKE_CHECK(it != slot_.end(), "operand emitted after use");
        RAKE_CHECK(lane >= 0 && lane < node->type().lanes,
                   "jit: lane " << lane << " out of range for "
                                << to_string(node->type()));
        return slot_disp(it->second + lane);
    }
    int32_t
    slot_disp(int64_t slot) const
    {
        const int64_t d = slot * 8;
        RAKE_CHECK(d >= 0 && d <= INT32_MAX, "arena exceeds disp32");
        return static_cast<int32_t>(d);
    }
    int32_t
    adisp(const Instr &n, int ai, int lane)
    {
        return disp(n.arg(ai).get(), lane);
    }
    /** Lane j of concat(arg a0, arg a1). */
    int32_t
    cat_disp(const Instr &n, int a0, int a1, int j)
    {
        const int l0 = n.arg(a0)->type().lanes;
        if (j < l0)
            return adisp(n, a0, j);
        return adisp(n, a1, j - l0);
    }
    /** Lane i of interleave(arg 0, arg 1). */
    int32_t
    ileave_disp(const Instr &n, int i)
    {
        return adisp(n, i % 2 == 0 ? 0 : 1, i / 2);
    }
    void
    ld(Reg r, const Instr &n, int ai, int lane)
    {
        a_.load(r, kArena, adisp(n, ai, lane));
    }
    void
    st(const Instr &n, int lane, Reg r)
    {
        a_.store(kArena, disp(&n, lane), r);
    }

    /** Arena slot of a broadcast constant (deduplicated). */
    int64_t
    const_slot(int64_t value, int lanes)
    {
        auto key = std::make_pair(value, lanes);
        auto it = const_map_.find(key);
        if (it != const_map_.end())
            return it->second;
        const int64_t slot =
            num_slots_ + static_cast<int64_t>(pool_.size());
        for (int i = 0; i < lanes; ++i)
            pool_.push_back(value);
        const_map_.emplace(key, slot);
        return slot;
    }

    // --- arith.h helpers, emitted ---
    void
    wrap_reg(Reg r, ScalarType s)
    {
        const int b = bits(s);
        if (b == 64)
            return;
        a_.shl_imm(r, 64 - b);
        if (is_signed(s))
            a_.sar_imm(r, 64 - b);
        else
            a_.shr_imm(r, 64 - b);
    }
    void
    saturate_reg(Reg r, ScalarType s, Reg tmp)
    {
        a_.mov_imm64(tmp, min_value(s));
        a_.cmp(r, tmp);
        a_.cmov(Cond::l, r, tmp);
        a_.mov_imm64(tmp, max_value(s));
        a_.cmp(r, tmp);
        a_.cmov(Cond::g, r, tmp);
    }
    void
    shift_right_reg(Reg r, int n, bool round, Reg tmp)
    {
        if (n <= 0)
            return;
        if (n >= 63) {
            a_.sar_imm(r, 63); // collapses to the sign, as arith.h
            return;
        }
        if (round) {
            // The rounding add wraps like the uint64_t carrier trick.
            a_.mov_imm64(tmp,
                         static_cast<int64_t>(uint64_t{1} << (n - 1)));
            a_.add(r, tmp);
        }
        a_.sar_imm(r, n);
    }
    void
    shift_left_reg(Reg r, ScalarType s, int n)
    {
        if (n <= 0) {
            wrap_reg(r, s);
            return;
        }
        if (n >= 64) {
            a_.xor_(r, r);
            return;
        }
        a_.shl_imm(r, n);
        wrap_reg(r, s);
    }
    void
    lsr_reg(Reg r, ScalarType s, int n)
    {
        if (n <= 0) {
            wrap_reg(r, s);
            return;
        }
        const int b = bits(s);
        if (n >= b) {
            a_.xor_(r, r);
            return;
        }
        if (b < 64) { // zero-fill down to the type's width first
            a_.shl_imm(r, 64 - b);
            a_.shr_imm(r, 64 - b);
        }
        a_.shr_imm(r, n);
        wrap_reg(r, s);
    }
    void
    mul_imm(Reg r, int64_t imm, Reg tmp)
    {
        a_.mov_imm64(tmp, imm);
        a_.imul(r, tmp);
    }

    // --- packed fast path ---
    int simd_chunk() const { return simd_ == SimdLevel::Avx2 ? 4 : 2; }
    /**
     * Packed `vop` over identity-indexed lanes of args 0 and 1, with
     * the wrap-to-elem fixup. Covers lanes [0, r); the caller emits
     * the scalar tail from r. Returns 0 (nothing emitted) at
     * SimdLevel::Scalar.
     */
    int emit_simd_bin(const Instr &n, VecOp vop);
    /** Same for VNot (pxor with all-ones, then wrap). */
    int emit_simd_not(const Instr &n);
    void emit_simd_wrap(ScalarType s, int chunk);

    Assembler a_;
    SimdLevel simd_;
    bool used_avx_ = false;

    std::unordered_map<const Instr *, int64_t> slot_;
    std::vector<const Instr *> order_;
    int64_t num_slots_ = 0;
    std::vector<int64_t> pool_;
    std::map<std::pair<int64_t, int>, int64_t> const_map_;

    std::map<int, int> buf_index_;           ///< buffer id -> desc index
    std::vector<int> buf_ids_;
    std::map<int, ScalarType> load_elems_;
    std::vector<Program::SplatSite> splats_;
};

void
Lowerer::collect(const hvx::InstrPtr &n)
{
    if (!n || slot_.count(n.get()))
        return;
    for (const hvx::InstrPtr &arg : n->args())
        collect(arg);
    RAKE_USER_CHECK(n->op() != hvx::Opcode::Hole,
                    "jit: sketch holes cannot be compiled");
    slot_.emplace(n.get(), num_slots_);
    num_slots_ += n->type().lanes;
    order_.push_back(n.get());
    if (n->op() == hvx::Opcode::VRead) {
        const hir::LoadRef &r = n->load_ref();
        const ScalarType s = n->type().elem;
        auto it = load_elems_.find(r.buffer);
        if (it == load_elems_.end()) {
            load_elems_.emplace(r.buffer, s);
            buf_index_.emplace(r.buffer,
                               static_cast<int>(buf_ids_.size()));
            buf_ids_.push_back(r.buffer);
        } else {
            RAKE_USER_CHECK(it->second == s,
                            "jit: buffer " << r.buffer
                                           << " read at two element "
                                              "types");
        }
    }
    if (n->op() == hvx::Opcode::VSplat) {
        Program::SplatSite sp;
        sp.expr = n->splat_value();
        sp.slot = slot_.at(n.get());
        sp.lanes = n->type().lanes;
        sp.elem = n->type().elem;
        splats_.push_back(std::move(sp));
    }
}

void
Lowerer::emit_simd_wrap(ScalarType s, int chunk)
{
    const int b = bits(s);
    if (b == 64)
        return;
    const int64_t mask =
        static_cast<int64_t>((uint64_t{1} << b) - 1);
    const int32_t mask_d = slot_disp(const_slot(mask, chunk));
    if (simd_ == SimdLevel::Avx2) {
        a_.avx_op_mem(VecOp::pand, Vreg::xmm0, Vreg::xmm0, kArena,
                      mask_d);
        if (is_signed(s)) {
            const int64_t sign =
                static_cast<int64_t>(uint64_t{1} << (b - 1));
            const int32_t sign_d = slot_disp(const_slot(sign, chunk));
            a_.avx_op_mem(VecOp::pxor, Vreg::xmm0, Vreg::xmm0, kArena,
                          sign_d);
            a_.avx_op_mem(VecOp::psubq, Vreg::xmm0, Vreg::xmm0, kArena,
                          sign_d);
        }
    } else {
        a_.sse_op_mem(VecOp::pand, Vreg::xmm0, kArena, mask_d);
        if (is_signed(s)) {
            const int64_t sign =
                static_cast<int64_t>(uint64_t{1} << (b - 1));
            const int32_t sign_d = slot_disp(const_slot(sign, chunk));
            a_.sse_op_mem(VecOp::pxor, Vreg::xmm0, kArena, sign_d);
            a_.sse_op_mem(VecOp::psubq, Vreg::xmm0, kArena, sign_d);
        }
    }
}

int
Lowerer::emit_simd_bin(const Instr &n, VecOp vop)
{
    if (simd_ == SimdLevel::Scalar)
        return 0;
    const ScalarType s = n.type().elem;
    const int L = n.type().lanes;
    const int chunk = simd_chunk();
    int i = 0;
    for (; i + chunk <= L; i += chunk) {
        if (simd_ == SimdLevel::Avx2) {
            used_avx_ = true;
            a_.vmovdqu_load(Vreg::xmm0, kArena, adisp(n, 0, i));
            a_.avx_op_mem(vop, Vreg::xmm0, Vreg::xmm0, kArena,
                          adisp(n, 1, i));
        } else {
            a_.movdqu_load(Vreg::xmm0, kArena, adisp(n, 0, i));
            a_.sse_op_mem(vop, Vreg::xmm0, kArena, adisp(n, 1, i));
        }
        emit_simd_wrap(s, chunk);
        if (simd_ == SimdLevel::Avx2)
            a_.vmovdqu_store(kArena, disp(&n, i), Vreg::xmm0);
        else
            a_.movdqu_store(kArena, disp(&n, i), Vreg::xmm0);
    }
    return i;
}

int
Lowerer::emit_simd_not(const Instr &n)
{
    if (simd_ == SimdLevel::Scalar)
        return 0;
    const ScalarType s = n.type().elem;
    const int L = n.type().lanes;
    const int chunk = simd_chunk();
    const int32_t ones_d = slot_disp(const_slot(-1, chunk));
    int i = 0;
    for (; i + chunk <= L; i += chunk) {
        if (simd_ == SimdLevel::Avx2) {
            used_avx_ = true;
            a_.vmovdqu_load(Vreg::xmm0, kArena, adisp(n, 0, i));
            a_.avx_op_mem(VecOp::pxor, Vreg::xmm0, Vreg::xmm0, kArena,
                          ones_d);
        } else {
            a_.movdqu_load(Vreg::xmm0, kArena, adisp(n, 0, i));
            a_.sse_op_mem(VecOp::pxor, Vreg::xmm0, kArena, ones_d);
        }
        emit_simd_wrap(s, chunk);
        if (simd_ == SimdLevel::Avx2)
            a_.vmovdqu_store(kArena, disp(&n, i), Vreg::xmm0);
        else
            a_.movdqu_store(kArena, disp(&n, i), Vreg::xmm0);
    }
    return i;
}

void
Lowerer::emit_vread(const Instr &n)
{
    const hir::LoadRef &r = n.load_ref();
    const ScalarType s = n.type().elem;
    const int L = n.type().lanes;
    const int32_t dbase =
        buf_index_.at(r.buffer) * static_cast<int32_t>(sizeof(BufferDesc));

    a_.load(Reg::rsi, kBufs, dbase + 8);  // width
    a_.load(Reg::rdx, kBufs, dbase + 16); // height
    // iy = clamp(y + dy - y0, 0, height - 1)
    a_.mov(Reg::rax, kY);
    if (r.dy != 0)
        a_.add_imm32(Reg::rax, r.dy);
    a_.load(Reg::rcx, kBufs, dbase + 32); // y0
    a_.sub(Reg::rax, Reg::rcx);
    a_.xor_(Reg::rcx, Reg::rcx);
    a_.cmp(Reg::rax, Reg::rcx);
    a_.cmov(Cond::l, Reg::rax, Reg::rcx);
    a_.lea(Reg::rcx, Reg::rdx, -1);
    a_.cmp(Reg::rax, Reg::rcx);
    a_.cmov(Cond::g, Reg::rax, Reg::rcx);
    // r9 = data + iy * width * 8
    a_.imul(Reg::rax, Reg::rsi);
    a_.load(Reg::r9, kBufs, dbase + 0);
    a_.lea_index8(Reg::r9, Reg::r9, Reg::rax);
    // r10 = x + dx - x0; r8 = width - 1; rcx stays 0 for the clamps.
    a_.mov(Reg::r10, kX);
    if (r.dx != 0)
        a_.add_imm32(Reg::r10, r.dx);
    a_.load(Reg::rcx, kBufs, dbase + 24); // x0
    a_.sub(Reg::r10, Reg::rcx);
    a_.lea(Reg::r8, Reg::rsi, -1);
    a_.xor_(Reg::rcx, Reg::rcx);
    for (int i = 0; i < L; ++i) {
        a_.lea(Reg::rax, Reg::r10, i); // ix, then edge-clamp
        a_.cmp(Reg::rax, Reg::rcx);
        a_.cmov(Cond::l, Reg::rax, Reg::rcx);
        a_.cmp(Reg::rax, Reg::r8);
        a_.cmov(Cond::g, Reg::rax, Reg::r8);
        a_.load_index8(Reg::rax, Reg::r9, Reg::rax);
        wrap_reg(Reg::rax, s);
        st(n, i, Reg::rax);
    }
}

void
Lowerer::emit_vbitcast(const Instr &n)
{
    const ScalarType s = n.type().elem;
    const int in_w = bytes(n.arg(0)->type().elem);
    const int out_w = bytes(s);
    const int L = n.type().lanes;
    for (int i = 0; i < L; ++i) {
        if (out_w == in_w) {
            ld(Reg::rax, n, 0, i);
        } else if (out_w < in_w) {
            // One input lane supplies this output lane's bytes.
            const int j = (i * out_w) / in_w;
            const int off = (i * out_w) % in_w;
            ld(Reg::rax, n, 0, j);
            if (off > 0)
                a_.shr_imm(Reg::rax, 8 * off);
        } else {
            // out_w / in_w input lanes assemble this output lane,
            // little-endian (interp.cc's byte serialization).
            const int k = out_w / in_w;
            for (int m = 0; m < k; ++m) {
                ld(Reg::rsi, n, 0, i * k + m);
                if (in_w < 8) { // zero-extend to the input width
                    a_.shl_imm(Reg::rsi, 64 - 8 * in_w);
                    a_.shr_imm(Reg::rsi, 64 - 8 * in_w);
                }
                if (m > 0)
                    a_.shl_imm(Reg::rsi, 8 * in_w * m);
                if (m == 0)
                    a_.mov(Reg::rax, Reg::rsi);
                else
                    a_.or_(Reg::rax, Reg::rsi);
            }
        }
        wrap_reg(Reg::rax, s);
        st(n, i, Reg::rax);
    }
}

void
Lowerer::emit_node(const Instr &n)
{
    using hvx::Opcode;
    const VecType t = n.type();
    const ScalarType s = t.elem;
    const int L = t.lanes;
    const std::vector<int64_t> &im = n.imms();

    // Shared emit shapes over constant lane maps.
    auto copy_lanes = [&](auto src_disp) {
        for (int i = 0; i < L; ++i) {
            a_.load(Reg::rax, kArena, src_disp(i));
            st(n, i, Reg::rax);
        }
    };
    auto bin_lanes = [&](void (Assembler::*op)(Reg, Reg), bool sat) {
        for (int i = 0; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            (a_.*op)(Reg::rax, Reg::rsi);
            if (sat)
                saturate_reg(Reg::rax, s, Reg::rsi);
            else
                wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
    };
    auto cmp_lanes = [&](Cond cc) {
        for (int i = 0; i < L; ++i) {
            ld(Reg::rcx, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            a_.xor_(Reg::rax, Reg::rax);
            a_.cmp(Reg::rcx, Reg::rsi);
            a_.setcc_al(cc);
            st(n, i, Reg::rax);
        }
    };
    auto minmax_lanes = [&](Cond move_if) {
        for (int i = 0; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            a_.cmp(Reg::rax, Reg::rsi);
            a_.cmov(move_if, Reg::rax, Reg::rsi);
            st(n, i, Reg::rax);
        }
    };
    auto avg_lanes = [&](bool negate, bool round) {
        for (int i = 0; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            if (negate)
                a_.sub(Reg::rax, Reg::rsi);
            else
                a_.add(Reg::rax, Reg::rsi);
            if (round)
                a_.add_imm32(Reg::rax, 1);
            a_.sar_imm(Reg::rax, 1);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
    };
    // acc(i) = base + sum of taps; taps at constant displacements.
    auto mac_lanes = [&](auto emit_base, auto emit_taps) {
        for (int i = 0; i < L; ++i) {
            emit_base(i); // leaves the accumulator in rax
            emit_taps(i); // adds products into rax (rcx/rdx free)
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
    };

    switch (n.op()) {
      case Opcode::VRead:
        emit_vread(n);
        return;
      case Opcode::VSplat:
        return; // host-filled at bind(): loop-invariant
      case Opcode::Hole:
        RAKE_UNREACHABLE("holes rejected in collect()");
      case Opcode::VBitcast:
        emit_vbitcast(n);
        return;
      case Opcode::VCombine:
        copy_lanes([&](int i) { return cat_disp(n, 0, 1, i); });
        return;
      case Opcode::VLo:
        copy_lanes([&](int i) { return adisp(n, 0, i); });
        return;
      case Opcode::VHi:
        copy_lanes([&](int i) { return adisp(n, 0, L + i); });
        return;
      case Opcode::VAlign:
        copy_lanes([&](int i) {
            const int j = i + static_cast<int>(im[0]);
            return j < L ? adisp(n, 0, j) : adisp(n, 1, j - L);
        });
        return;
      case Opcode::VRor:
        copy_lanes([&](int i) {
            return adisp(n, 0, (i + static_cast<int>(im[0])) % L);
        });
        return;
      case Opcode::VShuffVdd:
        copy_lanes([&](int i) {
            const int h = L / 2;
            return adisp(n, 0, i % 2 == 0 ? i / 2 : h + i / 2);
        });
        return;
      case Opcode::VDealVdd:
        copy_lanes([&](int i) {
            const int h = L / 2;
            return adisp(n, 0, i < h ? 2 * i : 2 * (i - h) + 1);
        });
        return;
      case Opcode::VMux:
        for (int i = 0; i < L; ++i) {
            ld(Reg::rcx, n, 0, i);
            ld(Reg::rax, n, 2, i);
            ld(Reg::rsi, n, 1, i);
            a_.test(Reg::rcx, Reg::rcx);
            a_.cmov(Cond::ne, Reg::rax, Reg::rsi);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VPackE:
        for (int i = 0; i < L; ++i) {
            a_.load(Reg::rax, kArena, ileave_disp(n, i));
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VPackO: {
        const ScalarType src = n.arg(0)->type().elem;
        const int half = bits(src) / 2;
        for (int i = 0; i < L; ++i) {
            a_.load(Reg::rax, kArena, ileave_disp(n, i));
            lsr_reg(Reg::rax, src, half);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      }
      case Opcode::VSat:
      case Opcode::VPackSat:
        for (int i = 0; i < L; ++i) {
            a_.load(Reg::rax, kArena, ileave_disp(n, i));
            saturate_reg(Reg::rax, s, Reg::rsi);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VZxt:
      case Opcode::VSxt:
        for (int i = 0; i < L; ++i) {
            ld(Reg::rax, n, 0, deint(i, L));
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VAdd: {
        const int done = emit_simd_bin(n, VecOp::paddq);
        for (int i = done; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            a_.add(Reg::rax, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      }
      case Opcode::VSub: {
        const int done = emit_simd_bin(n, VecOp::psubq);
        for (int i = done; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            a_.sub(Reg::rax, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      }
      case Opcode::VAnd: {
        const int done = emit_simd_bin(n, VecOp::pand);
        for (int i = done; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            a_.and_(Reg::rax, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      }
      case Opcode::VOr: {
        const int done = emit_simd_bin(n, VecOp::por);
        for (int i = done; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            a_.or_(Reg::rax, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      }
      case Opcode::VXor: {
        const int done = emit_simd_bin(n, VecOp::pxor);
        for (int i = done; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            a_.xor_(Reg::rax, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      }
      case Opcode::VNot: {
        const int done = emit_simd_not(n);
        for (int i = done; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            a_.not_(Reg::rax);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      }
      case Opcode::VAddSat:
        bin_lanes(&Assembler::add, /*sat=*/true);
        return;
      case Opcode::VSubSat:
        bin_lanes(&Assembler::sub, /*sat=*/true);
        return;
      case Opcode::VAvg:
        avg_lanes(/*negate=*/false, /*round=*/false);
        return;
      case Opcode::VAvgRnd:
        avg_lanes(/*negate=*/false, /*round=*/true);
        return;
      case Opcode::VNavg:
        avg_lanes(/*negate=*/true, /*round=*/false);
        return;
      case Opcode::VAbsDiff:
        for (int i = 0; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            a_.mov(Reg::rdx, Reg::rax);
            a_.sub(Reg::rdx, Reg::rsi); // a - b
            a_.mov(Reg::rcx, Reg::rsi);
            a_.sub(Reg::rcx, Reg::rax); // b - a
            a_.cmp(Reg::rax, Reg::rsi);
            a_.mov(Reg::rax, Reg::rcx);
            a_.cmov(Cond::g, Reg::rax, Reg::rdx);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VMax:
        minmax_lanes(Cond::l);
        return;
      case Opcode::VMin:
        minmax_lanes(Cond::g);
        return;
      case Opcode::VCmpGt:
        cmp_lanes(Cond::g);
        return;
      case Opcode::VCmpEq:
        cmp_lanes(Cond::e);
        return;
      case Opcode::VAsl:
        for (int i = 0; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            shift_left_reg(Reg::rax, s, static_cast<int>(im[0]));
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VAsr:
      case Opcode::VAsrRnd:
        for (int i = 0; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            shift_right_reg(Reg::rax, static_cast<int>(im[0]),
                            n.op() == Opcode::VAsrRnd, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VLsr:
        for (int i = 0; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            lsr_reg(Reg::rax, s, static_cast<int>(im[0]));
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VAsrNarrow:
        for (int i = 0; i < L; ++i) {
            a_.load(Reg::rax, kArena, ileave_disp(n, i));
            shift_right_reg(Reg::rax, static_cast<int>(im[0]), false,
                            Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VAsrNarrowSat:
      case Opcode::VAsrNarrowRndSat:
        for (int i = 0; i < L; ++i) {
            a_.load(Reg::rax, kArena, ileave_disp(n, i));
            shift_right_reg(Reg::rax, static_cast<int>(im[0]),
                            n.op() == Opcode::VAsrNarrowRndSat,
                            Reg::rsi);
            saturate_reg(Reg::rax, s, Reg::rsi);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VRoundSat: {
        const int half = bits(n.arg(0)->type().elem) / 2;
        for (int i = 0; i < L; ++i) {
            a_.load(Reg::rax, kArena, ileave_disp(n, i));
            shift_right_reg(Reg::rax, half, /*round=*/true, Reg::rsi);
            saturate_reg(Reg::rax, s, Reg::rsi);
            st(n, i, Reg::rax);
        }
        return;
      }
      case Opcode::VMpy:
        for (int i = 0; i < L; ++i) {
            const int j = deint(i, L);
            ld(Reg::rax, n, 0, j);
            ld(Reg::rsi, n, 1, j);
            a_.imul(Reg::rax, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VMpyAcc:
        for (int i = 0; i < L; ++i) {
            const int j = deint(i, L);
            ld(Reg::rax, n, 1, j);
            ld(Reg::rsi, n, 2, j);
            a_.imul(Reg::rax, Reg::rsi);
            ld(Reg::rsi, n, 0, i);
            a_.add(Reg::rax, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VMpyi:
        for (int i = 0; i < L; ++i) {
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, i);
            a_.imul(Reg::rax, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VMpyiAcc:
        for (int i = 0; i < L; ++i) {
            ld(Reg::rax, n, 1, i);
            ld(Reg::rsi, n, 2, i);
            a_.imul(Reg::rax, Reg::rsi);
            ld(Reg::rsi, n, 0, i);
            a_.add(Reg::rax, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
      case Opcode::VMpa:
        mac_lanes(
            [&](int i) {
                const int j = deint(i, L);
                ld(Reg::rax, n, 0, j);
                mul_imm(Reg::rax, im[0], Reg::rsi);
            },
            [&](int i) {
                const int j = deint(i, L);
                ld(Reg::rdx, n, 1, j);
                mul_imm(Reg::rdx, im[1], Reg::rsi);
                a_.add(Reg::rax, Reg::rdx);
            });
        return;
      case Opcode::VMpaAcc:
        mac_lanes([&](int i) { ld(Reg::rax, n, 0, i); },
                  [&](int i) {
                      const int j = deint(i, L);
                      ld(Reg::rdx, n, 1, j);
                      mul_imm(Reg::rdx, im[0], Reg::rsi);
                      a_.add(Reg::rax, Reg::rdx);
                      ld(Reg::rdx, n, 2, j);
                      mul_imm(Reg::rdx, im[1], Reg::rsi);
                      a_.add(Reg::rax, Reg::rdx);
                  });
        return;
      case Opcode::VDmpy:
        mac_lanes(
            [&](int i) {
                const int j = deint(i, L);
                a_.load(Reg::rax, kArena, cat_disp(n, 0, 1, j));
                mul_imm(Reg::rax, im[0], Reg::rsi);
            },
            [&](int i) {
                const int j = deint(i, L);
                a_.load(Reg::rdx, kArena, cat_disp(n, 0, 1, j + 1));
                mul_imm(Reg::rdx, im[1], Reg::rsi);
                a_.add(Reg::rax, Reg::rdx);
            });
        return;
      case Opcode::VDmpyAcc:
        mac_lanes([&](int i) { ld(Reg::rax, n, 0, i); },
                  [&](int i) {
                      const int j = deint(i, L);
                      a_.load(Reg::rdx, kArena, cat_disp(n, 1, 2, j));
                      mul_imm(Reg::rdx, im[0], Reg::rsi);
                      a_.add(Reg::rax, Reg::rdx);
                      a_.load(Reg::rdx, kArena,
                              cat_disp(n, 1, 2, j + 1));
                      mul_imm(Reg::rdx, im[1], Reg::rsi);
                      a_.add(Reg::rax, Reg::rdx);
                  });
        return;
      case Opcode::VTmpy:
        mac_lanes(
            [&](int i) {
                const int j = deint(i, L);
                a_.load(Reg::rax, kArena, cat_disp(n, 0, 1, j));
                mul_imm(Reg::rax, im[0], Reg::rsi);
            },
            [&](int i) {
                const int j = deint(i, L);
                a_.load(Reg::rdx, kArena, cat_disp(n, 0, 1, j + 1));
                mul_imm(Reg::rdx, im[1], Reg::rsi);
                a_.add(Reg::rax, Reg::rdx);
                a_.load(Reg::rdx, kArena, cat_disp(n, 0, 1, j + 2));
                a_.add(Reg::rax, Reg::rdx);
            });
        return;
      case Opcode::VTmpyAcc:
        mac_lanes([&](int i) { ld(Reg::rax, n, 0, i); },
                  [&](int i) {
                      const int j = deint(i, L);
                      a_.load(Reg::rdx, kArena, cat_disp(n, 1, 2, j));
                      mul_imm(Reg::rdx, im[0], Reg::rsi);
                      a_.add(Reg::rax, Reg::rdx);
                      a_.load(Reg::rdx, kArena,
                              cat_disp(n, 1, 2, j + 1));
                      mul_imm(Reg::rdx, im[1], Reg::rsi);
                      a_.add(Reg::rax, Reg::rdx);
                      a_.load(Reg::rdx, kArena,
                              cat_disp(n, 1, 2, j + 2));
                      a_.add(Reg::rax, Reg::rdx);
                  });
        return;
      case Opcode::VRmpy:
        mac_lanes([&](int) { a_.xor_(Reg::rax, Reg::rax); },
                  [&](int i) {
                      const int j = deint(i, L);
                      for (int k = 0; k < 4; ++k) {
                          a_.load(Reg::rdx, kArena,
                                  cat_disp(n, 0, 1, j + k));
                          mul_imm(Reg::rdx, im[k], Reg::rsi);
                          a_.add(Reg::rax, Reg::rdx);
                      }
                  });
        return;
      case Opcode::VRmpyAcc:
        mac_lanes([&](int i) { ld(Reg::rax, n, 0, i); },
                  [&](int i) {
                      const int j = deint(i, L);
                      for (int k = 0; k < 4; ++k) {
                          a_.load(Reg::rdx, kArena,
                                  cat_disp(n, 1, 2, j + k));
                          mul_imm(Reg::rdx, im[k], Reg::rsi);
                          a_.add(Reg::rax, Reg::rdx);
                      }
                  });
        return;
      case Opcode::VDotRmpy:
        mac_lanes([&](int) { a_.xor_(Reg::rax, Reg::rax); },
                  [&](int i) {
                      for (int k = 0; k < 4; ++k) {
                          ld(Reg::rdx, n, 0, 4 * i + k);
                          ld(Reg::rsi, n, 1, 4 * i + k);
                          a_.imul(Reg::rdx, Reg::rsi);
                          a_.add(Reg::rax, Reg::rdx);
                      }
                  });
        return;
      case Opcode::VDotRmpyAcc:
        mac_lanes([&](int i) { ld(Reg::rax, n, 0, i); },
                  [&](int i) {
                      for (int k = 0; k < 4; ++k) {
                          ld(Reg::rdx, n, 1, 4 * i + k);
                          ld(Reg::rsi, n, 2, 4 * i + k);
                          a_.imul(Reg::rdx, Reg::rsi);
                          a_.add(Reg::rax, Reg::rdx);
                      }
                  });
        return;
      case Opcode::VMpyIE:
      case Opcode::VMpyIO:
        for (int i = 0; i < L; ++i) {
            const int j = n.op() == Opcode::VMpyIE ? 2 * i : 2 * i + 1;
            ld(Reg::rax, n, 0, i);
            ld(Reg::rsi, n, 1, j);
            a_.imul(Reg::rax, Reg::rsi);
            wrap_reg(Reg::rax, s);
            st(n, i, Reg::rax);
        }
        return;
    }
    RAKE_UNREACHABLE("unhandled opcode in jit lowering");
}

std::unique_ptr<Program>
Lowerer::lower(const hvx::InstrPtr &root)
{
    collect(root);

    // Prologue: pin arena/bufs/x/y in callee-saved registers. No
    // calls are made, so stack alignment past the pushes is moot.
    a_.push(Reg::rbx);
    a_.push(Reg::r12);
    a_.push(Reg::r14);
    a_.push(Reg::r15);
    a_.load(kArena, Reg::rdi, offsetof(Frame, arena));
    a_.load(kBufs, Reg::rdi, offsetof(Frame, bufs));
    a_.load(kX, Reg::rdi, offsetof(Frame, x));
    a_.load(kY, Reg::rdi, offsetof(Frame, y));

    for (const Instr *n : order_)
        emit_node(*n);

    if (used_avx_)
        a_.vzeroupper();
    a_.pop(Reg::r15);
    a_.pop(Reg::r14);
    a_.pop(Reg::r12);
    a_.pop(Reg::rbx);
    a_.ret();

    auto p = std::unique_ptr<Program>(new Program());
    p->arena_.assign(static_cast<size_t>(num_slots_) + pool_.size(), 0);
    std::copy(pool_.begin(), pool_.end(),
              p->arena_.begin() + num_slots_);
    p->bufs_.resize(buf_ids_.size());
    p->buf_ids_ = std::move(buf_ids_);
    p->splats_ = std::move(splats_);
    p->load_elems_ = std::move(load_elems_);
    p->out_type_ = root->type();
    p->out_slot_ = slot_.at(root.get());
    p->simd_ = simd_;
    p->out_value_.reset(p->out_type_);
    p->code_.seal(a_.code());
    p->fn_ = reinterpret_cast<void (*)(Frame *)>(
        const_cast<void *>(p->code_.entry()));
    return p;
}

std::unique_ptr<Program>
Program::compile(const hvx::InstrPtr &code)
{
    RAKE_USER_CHECK(code != nullptr, "jit: null program");
    RAKE_USER_CHECK(available(),
                    "jit: native execution requires an x86-64 host "
                    "(use --execute interp here)");
    Lowerer lowerer(simd_level());
    return lowerer.lower(code);
}

} // namespace rake::jit
