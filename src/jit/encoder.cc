#include "jit/encoder.h"

#include "support/error.h"

namespace rake::jit {

namespace {

uint8_t
num(Reg r)
{
    return static_cast<uint8_t>(r);
}

uint8_t
num(Vreg r)
{
    return static_cast<uint8_t>(r);
}

} // namespace

void
Assembler::dword(int32_t v)
{
    const uint32_t u = static_cast<uint32_t>(v);
    byte(static_cast<uint8_t>(u));
    byte(static_cast<uint8_t>(u >> 8));
    byte(static_cast<uint8_t>(u >> 16));
    byte(static_cast<uint8_t>(u >> 24));
}

void
Assembler::qword(int64_t v)
{
    const uint64_t u = static_cast<uint64_t>(v);
    for (int i = 0; i < 8; ++i)
        byte(static_cast<uint8_t>(u >> (8 * i)));
}

void
Assembler::rex(bool w, uint8_t reg, uint8_t index, uint8_t rm)
{
    const uint8_t b = 0x40 | (w ? 0x08 : 0) | ((reg & 8) ? 0x04 : 0) |
                      ((index & 8) ? 0x02 : 0) | ((rm & 8) ? 0x01 : 0);
    // A REX prefix is mandatory for 64-bit operands; otherwise only
    // when an extended register needs its high bit.
    if (w || b != 0x40)
        byte(b);
}

void
Assembler::modrm_reg(uint8_t reg, uint8_t rm)
{
    byte(0xC0 | ((reg & 7) << 3) | (rm & 7));
}

void
Assembler::modrm_mem(uint8_t reg, Reg base, int32_t disp)
{
    // mod=10 ([base + disp32]) always: uniform and never ambiguous.
    // rm=100 selects a SIB byte, so rsp/r12 bases must route through
    // one (index=100 means "no index").
    if ((num(base) & 7) == 4) {
        byte(0x84 | ((reg & 7) << 3));
        byte(0x24);
    } else {
        byte(0x80 | ((reg & 7) << 3) | (num(base) & 7));
    }
    dword(disp);
}

void
Assembler::modrm_sib8(uint8_t reg, Reg base, Reg index, int32_t disp)
{
    RAKE_CHECK((num(index) & 7) != 4, "rsp cannot be an index");
    byte(0x84 | ((reg & 7) << 3)); // mod=10, rm=100 (SIB follows)
    byte(0xC0 | ((num(index) & 7) << 3) | (num(base) & 7)); // scale=8
    dword(disp);
}

void
Assembler::push(Reg r)
{
    if (num(r) & 8)
        byte(0x41);
    byte(0x50 + (num(r) & 7));
}

void
Assembler::pop(Reg r)
{
    if (num(r) & 8)
        byte(0x41);
    byte(0x58 + (num(r) & 7));
}

void
Assembler::ret()
{
    byte(0xC3);
}

void
Assembler::mov(Reg dst, Reg src)
{
    rex(true, num(dst), 0, num(src));
    byte(0x8B);
    modrm_reg(num(dst), num(src));
}

void
Assembler::mov_imm64(Reg dst, int64_t imm)
{
    rex(true, 0, 0, num(dst));
    byte(0xB8 + (num(dst) & 7));
    qword(imm);
}

void
Assembler::load(Reg dst, Reg base, int32_t disp)
{
    rex(true, num(dst), 0, num(base));
    byte(0x8B);
    modrm_mem(num(dst), base, disp);
}

void
Assembler::store(Reg base, int32_t disp, Reg src)
{
    rex(true, num(src), 0, num(base));
    byte(0x89);
    modrm_mem(num(src), base, disp);
}

void
Assembler::load_index8(Reg dst, Reg base, Reg index, int32_t disp)
{
    rex(true, num(dst), num(index), num(base));
    byte(0x8B);
    modrm_sib8(num(dst), base, index, disp);
}

void
Assembler::lea(Reg dst, Reg base, int32_t disp)
{
    rex(true, num(dst), 0, num(base));
    byte(0x8D);
    modrm_mem(num(dst), base, disp);
}

void
Assembler::lea_index8(Reg dst, Reg base, Reg index, int32_t disp)
{
    rex(true, num(dst), num(index), num(base));
    byte(0x8D);
    modrm_sib8(num(dst), base, index, disp);
}

namespace {

/** "r64, r/m64" ALU opcode bytes. */
constexpr uint8_t kAdd = 0x03, kSub = 0x2B, kAnd = 0x23, kOr = 0x0B,
                  kXor = 0x33, kCmp = 0x3B;

} // namespace

void
Assembler::add(Reg dst, Reg src)
{
    rex(true, num(dst), 0, num(src));
    byte(kAdd);
    modrm_reg(num(dst), num(src));
}

void
Assembler::sub(Reg dst, Reg src)
{
    rex(true, num(dst), 0, num(src));
    byte(kSub);
    modrm_reg(num(dst), num(src));
}

void
Assembler::and_(Reg dst, Reg src)
{
    rex(true, num(dst), 0, num(src));
    byte(kAnd);
    modrm_reg(num(dst), num(src));
}

void
Assembler::or_(Reg dst, Reg src)
{
    rex(true, num(dst), 0, num(src));
    byte(kOr);
    modrm_reg(num(dst), num(src));
}

void
Assembler::xor_(Reg dst, Reg src)
{
    rex(true, num(dst), 0, num(src));
    byte(kXor);
    modrm_reg(num(dst), num(src));
}

void
Assembler::imul(Reg dst, Reg src)
{
    rex(true, num(dst), 0, num(src));
    byte(0x0F);
    byte(0xAF);
    modrm_reg(num(dst), num(src));
}

void
Assembler::cmp(Reg a, Reg b)
{
    rex(true, num(a), 0, num(b));
    byte(kCmp);
    modrm_reg(num(a), num(b));
}

void
Assembler::test(Reg a, Reg b)
{
    rex(true, num(b), 0, num(a));
    byte(0x85);
    modrm_reg(num(b), num(a));
}

void
Assembler::not_(Reg r)
{
    rex(true, 0, 0, num(r));
    byte(0xF7);
    modrm_reg(2, num(r));
}

void
Assembler::add_imm32(Reg dst, int32_t imm)
{
    rex(true, 0, 0, num(dst));
    byte(0x81);
    modrm_reg(0, num(dst));
    dword(imm);
}

void
Assembler::shl_imm(Reg r, int n)
{
    RAKE_CHECK(n > 0 && n < 64, "bad shift " << n);
    rex(true, 0, 0, num(r));
    byte(0xC1);
    modrm_reg(4, num(r));
    byte(static_cast<uint8_t>(n));
}

void
Assembler::shr_imm(Reg r, int n)
{
    RAKE_CHECK(n > 0 && n < 64, "bad shift " << n);
    rex(true, 0, 0, num(r));
    byte(0xC1);
    modrm_reg(5, num(r));
    byte(static_cast<uint8_t>(n));
}

void
Assembler::sar_imm(Reg r, int n)
{
    RAKE_CHECK(n > 0 && n < 64, "bad shift " << n);
    rex(true, 0, 0, num(r));
    byte(0xC1);
    modrm_reg(7, num(r));
    byte(static_cast<uint8_t>(n));
}

void
Assembler::cmov(Cond cc, Reg dst, Reg src)
{
    rex(true, num(dst), 0, num(src));
    byte(0x0F);
    byte(0x40 | static_cast<uint8_t>(cc));
    modrm_reg(num(dst), num(src));
}

void
Assembler::setcc_al(Cond cc)
{
    byte(0x0F);
    byte(0x90 | static_cast<uint8_t>(cc));
    byte(0xC0); // mod=11, rm=rax -> al
}

void
Assembler::movdqu_load(Vreg dst, Reg base, int32_t disp)
{
    byte(0xF3);
    rex(false, num(dst), 0, num(base));
    byte(0x0F);
    byte(0x6F);
    modrm_mem(num(dst), base, disp);
}

void
Assembler::movdqu_store(Reg base, int32_t disp, Vreg src)
{
    byte(0xF3);
    rex(false, num(src), 0, num(base));
    byte(0x0F);
    byte(0x7F);
    modrm_mem(num(src), base, disp);
}

void
Assembler::sse_op(VecOp op, Vreg dst, Vreg src)
{
    byte(0x66);
    byte(0x0F);
    byte(static_cast<uint8_t>(op));
    modrm_reg(num(dst), num(src));
}

void
Assembler::sse_op_mem(VecOp op, Vreg dst, Reg base, int32_t disp)
{
    byte(0x66);
    rex(false, num(dst), 0, num(base));
    byte(0x0F);
    byte(static_cast<uint8_t>(op));
    modrm_mem(num(dst), base, disp);
}

void
Assembler::vex3(uint8_t reg, uint8_t base_rm, uint8_t vvvv, bool l256,
                uint8_t pp)
{
    byte(0xC4);
    // Inverted R/X/B; mmmmm = 00001 (0F map). X is never used here.
    byte(((reg & 8) ? 0 : 0x80) | 0x40 | ((base_rm & 8) ? 0 : 0x20) |
         0x01);
    // W=0, inverted vvvv, L, pp.
    byte(static_cast<uint8_t>(((~vvvv & 0xF) << 3) | (l256 ? 4 : 0) |
                              pp));
}

void
Assembler::vmovdqu_load(Vreg dst, Reg base, int32_t disp)
{
    vex3(num(dst), num(base), 0, /*l256=*/true, /*pp=F3*/ 2);
    byte(0x6F);
    modrm_mem(num(dst), base, disp);
}

void
Assembler::vmovdqu_store(Reg base, int32_t disp, Vreg src)
{
    vex3(num(src), num(base), 0, /*l256=*/true, /*pp=F3*/ 2);
    byte(0x7F);
    modrm_mem(num(src), base, disp);
}

void
Assembler::avx_op(VecOp op, Vreg dst, Vreg src1, Vreg src2)
{
    vex3(num(dst), num(src2), num(src1), /*l256=*/true, /*pp=66*/ 1);
    byte(static_cast<uint8_t>(op));
    modrm_reg(num(dst), num(src2));
}

void
Assembler::avx_op_mem(VecOp op, Vreg dst, Vreg src1, Reg base,
                      int32_t disp)
{
    vex3(num(dst), num(base), num(src1), /*l256=*/true, /*pp=66*/ 1);
    byte(static_cast<uint8_t>(op));
    modrm_mem(num(dst), base, disp);
}

void
Assembler::vzeroupper()
{
    byte(0xC5);
    byte(0xF8);
    byte(0x77);
}

} // namespace rake::jit
