#include "neon/sexpr.h"

#include <map>
#include <sstream>

#include "hir/printer.h"
#include "hir/sexpr.h"
#include "support/error.h"

namespace rake::neon {

namespace {

/** Mnemonic table (to_string(NOp) is unique per opcode). */
const std::map<std::string, NOp> &
opcode_table()
{
    static const std::map<std::string, NOp> table = [] {
        std::map<std::string, NOp> t;
        for (NOp op : {NOp::Ld1,    NOp::Dup,    NOp::Bitcast,
                       NOp::Movl,   NOp::Add,    NOp::Qadd,
                       NOp::Sub,    NOp::Mul,    NOp::Mla,
                       NOp::Mull,   NOp::Mlal,   NOp::Abd,
                       NOp::Min,    NOp::Max,    NOp::Hadd,
                       NOp::Rhadd,  NOp::Shl,    NOp::Sshr,
                       NOp::Ushr,   NOp::Rshr,   NOp::Xtn,
                       NOp::Qxtn,   NOp::Shrn,   NOp::Qrshrn,
                       NOp::Cmgt,   NOp::Cmeq,   NOp::Bsl,
                       NOp::And,    NOp::Orr,    NOp::Eor,
                       NOp::Not,    NOp::Lo,     NOp::Hi,
                       NOp::Combine, NOp::Ext,   NOp::Zip,
                       NOp::Uzp,    NOp::Rev,    NOp::Tbl}) {
            const bool inserted =
                t.emplace(to_string(op), op).second;
            RAKE_CHECK(inserted,
                       "duplicate Neon mnemonic: " << to_string(op));
        }
        return t;
    }();
    return table;
}

void
print(std::ostringstream &os, const NInstrPtr &n)
{
    // Holes are search-time placeholders; a persisted DAG is complete.
    RAKE_CHECK(n->op() != NOp::Hole, "serializing an unsolved sketch hole");
    os << "(" << to_string(n->op()) << " " << to_string(n->type());
    switch (n->op()) {
      case NOp::Ld1:
        os << " " << n->load_ref().buffer << " " << n->load_ref().dx
           << " " << n->load_ref().dy;
        break;
      case NOp::Dup:
        os << " " << hir::to_sexpr(n->dup_value());
        break;
      default:
        for (const auto &a : n->args()) {
            os << " ";
            print(os, a);
        }
        for (int64_t imm : n->imms())
            os << " #" << imm;
        break;
    }
    os << ")";
}

int64_t
parse_int(const std::string &s)
{
    try {
        size_t idx = 0;
        const int64_t v = std::stoll(s, &idx);
        RAKE_USER_CHECK(idx == s.size(), "bad integer: " << s);
        return v;
    } catch (const std::logic_error &) {
        throw UserError("bad integer literal: " + s);
    }
}

VecType
parse_vec_type(const std::string &s)
{
    const size_t x = s.find('x');
    RAKE_USER_CHECK(x != std::string::npos, "expected a vector type: "
                                                << s);
    return VecType(scalar_type_from_string(s.substr(0, x)),
                   static_cast<int>(parse_int(s.substr(x + 1))));
}

NInstrPtr
from_sexpr(const hir::SExpr &s)
{
    RAKE_USER_CHECK(!s.is_atom && s.items.size() >= 2 &&
                        s.items[0].is_atom && s.items[1].is_atom,
                    "expected (opcode type ...) form");
    auto it = opcode_table().find(s.items[0].atom);
    RAKE_USER_CHECK(it != opcode_table().end(),
                    "unknown Neon opcode: " << s.items[0].atom);
    const NOp op = it->second;
    const VecType type = parse_vec_type(s.items[1].atom);

    if (op == NOp::Ld1) {
        RAKE_USER_CHECK(s.items.size() == 5, "vld1 expects 3 fields");
        hir::LoadRef ref{
            static_cast<int>(parse_int(s.items[2].atom)),
            static_cast<int>(parse_int(s.items[3].atom)),
            static_cast<int>(parse_int(s.items[4].atom))};
        return NInstr::make_load(ref, type);
    }
    if (op == NOp::Dup) {
        RAKE_USER_CHECK(s.items.size() == 3, "vdup expects a payload");
        return NInstr::make_dup(hir::expr_from_sexpr(s.items[2]),
                                type.lanes);
    }

    std::vector<NInstrPtr> args;
    std::vector<int64_t> imms;
    for (size_t i = 2; i < s.items.size(); ++i) {
        const hir::SExpr &item = s.items[i];
        if (item.is_atom) {
            RAKE_USER_CHECK(!item.atom.empty() && item.atom[0] == '#',
                            "expected #imm, got " << item.atom);
            imms.push_back(parse_int(item.atom.substr(1)));
        } else {
            RAKE_USER_CHECK(imms.empty(),
                            "operands must precede immediates");
            args.push_back(from_sexpr(item));
        }
    }
    // The declared element type doubles as make()'s out_elem so ops
    // whose result signedness is a free parameter (vqmovn/vqmovun,
    // vreinterpret, ...) reconstruct exactly; the final check pins
    // every other op's inferred type to the declared one.
    NInstrPtr n = NInstr::make(op, std::move(args), std::move(imms),
                               type.elem);
    RAKE_USER_CHECK(n->type() == type,
                    "declared type " << to_string(type)
                                     << " != inferred "
                                     << to_string(n->type()));
    return n;
}

} // namespace

std::string
to_sexpr(const NInstrPtr &n)
{
    RAKE_CHECK(n != nullptr, "printing null instruction");
    std::ostringstream os;
    print(os, n);
    return os.str();
}

NInstrPtr
parse_instr(const std::string &text)
{
    return from_sexpr(hir::parse_sexpr(text));
}

} // namespace rake::neon
