#include "neon/select.h"

#include <unordered_map>

#include "backend/neon_backend.h"
#include "hir/interp.h"
#include "hir/simplify.h"
#include "support/error.h"
#include "synth/lift.h"
#include "synth/rake.h"
#include "synth/spec.h"
#include "synth/verify.h"

namespace rake::neon {

// ------------------------------------------------------------------
// Greedy UIR -> Neon lowering (the ablation baseline)
// ------------------------------------------------------------------

namespace {

using uir::UExprPtr;
using uir::UOp;
using uir::UParams;

class NeonSelector
{
  public:
    NInstrPtr
    lower(const UExprPtr &u)
    {
        auto it = memo_.find(u.get());
        if (it != memo_.end())
            return it->second;
        NInstrPtr n = lower_impl(u);
        memo_.emplace(u.get(), n);
        return n;
    }

  private:
    NInstrPtr
    dup_const(int64_t v, ScalarType t, int lanes)
    {
        return NInstr::make_dup(
            hir::Expr::make_const(v, VecType(t, 1)), lanes);
    }

    NInstrPtr
    coerce(NInstrPtr v, ScalarType want)
    {
        if (!v || v->type().elem == want)
            return v;
        if (bits(v->type().elem) != bits(want))
            return nullptr;
        return NInstr::make(NOp::Bitcast, {v}, {}, want);
    }

    /** Widen by one or two vmovl hops to the target width. */
    NInstrPtr
    widen_to(NInstrPtr v, ScalarType want)
    {
        while (v && bits(v->type().elem) < bits(want))
            v = NInstr::make(NOp::Movl, {v});
        return coerce(v, want);
    }

    NInstrPtr
    lower_impl(const UExprPtr &u)
    {
        const VecType t = u->type();
        const UParams &p = u->params();
        switch (u->op()) {
          case UOp::HirLeaf: {
            const hir::ExprPtr &leaf = u->leaf();
            if (leaf->op() == hir::Op::Load)
                return NInstr::make_load(leaf->load_ref(), t);
            if (leaf->op() == hir::Op::Broadcast)
                return NInstr::make_dup(leaf->arg(0), t.lanes);
            if (leaf->op() == hir::Op::Const)
                return dup_const(leaf->const_value(), t.elem, t.lanes);
            return NInstr::make_dup(
                hir::Expr::make_var(leaf->var_name(),
                                    VecType(t.elem, 1)),
                t.lanes);
          }
          case UOp::Widen:
            return widen_to(lower(u->arg(0)), t.elem);
          case UOp::Narrow: {
            NInstrPtr x = lower(u->arg(0));
            if (!x)
                return nullptr;
            const int ratio =
                bits(u->arg(0)->type().elem) / bits(t.elem);
            if (ratio == 1) {
                if (p.shift > 0) {
                    x = NInstr::make(p.round ? NOp::Rshr
                                    : is_signed(x->type().elem)
                                        ? NOp::Sshr
                                        : NOp::Ushr,
                                     {x}, {p.shift});
                }
                if (p.saturate)
                    return nullptr; // same-width sat: not mapped here
                return coerce(x, t.elem);
            }
            if (ratio == 4) {
                // Two hops; attributes apply on the first.
                UParams p1 = p;
                p1.out_elem = narrow(u->arg(0)->type().elem);
                UParams p2;
                p2.out_elem = t.elem;
                p2.saturate = p.saturate;
                UExprPtr mid = uir::UExpr::make(UOp::Narrow,
                                                {u->arg(0)}, p1);
                UExprPtr two =
                    uir::UExpr::make(UOp::Narrow, {mid}, p2);
                pinned_.push_back(mid);
                pinned_.push_back(two);
                return lower(two);
            }
            // Single narrowing hop: Neon's fused families.
            if (p.shift > 0 && p.round && p.saturate)
                return NInstr::make(NOp::Qrshrn, {x}, {p.shift},
                                    t.elem);
            if (p.shift > 0 && !p.round && !p.saturate)
                return coerce(NInstr::make(NOp::Shrn, {x}, {p.shift}),
                              t.elem);
            if (p.shift > 0) {
                x = NInstr::make(p.round ? NOp::Rshr
                                 : is_signed(x->type().elem)
                                     ? NOp::Sshr
                                     : NOp::Ushr,
                                 {x}, {p.shift});
            }
            if (p.saturate)
                return NInstr::make(NOp::Qxtn, {x}, {}, t.elem);
            return coerce(NInstr::make(NOp::Xtn, {x}), t.elem);
          }
          case UOp::VsMpyAdd: {
            if (p.saturate)
                return nullptr; // greedy repertoire: unmapped
            NInstrPtr acc;
            for (int i = 0; i < u->num_args(); ++i) {
                NInstrPtr x = lower(u->arg(i));
                if (!x)
                    return nullptr;
                const int64_t w = p.kernel[i];
                const bool narrow_term =
                    bits(x->type().elem) * 2 == bits(t.elem);
                if (narrow_term) {
                    NInstrPtr ws = dup_const(w, x->type().elem,
                                             x->type().lanes);
                    NInstrPtr v =
                        acc ? NInstr::make(
                                  NOp::Mlal,
                                  {coerce(acc,
                                          widen(x->type().elem)),
                                   x, ws})
                            : NInstr::make(NOp::Mull, {x, ws});
                    acc = coerce(v, t.elem);
                } else {
                    NInstrPtr xw = widen_to(x, t.elem);
                    if (!xw)
                        return nullptr;
                    if (w == 1 && acc) {
                        acc = NInstr::make(NOp::Add, {acc, xw});
                    } else if (w == 1) {
                        acc = xw;
                    } else {
                        NInstrPtr ws =
                            dup_const(w, t.elem, t.lanes);
                        acc = acc ? NInstr::make(NOp::Mla,
                                                 {acc, xw, ws})
                                  : NInstr::make(NOp::Mul, {xw, ws});
                    }
                }
                if (!acc)
                    return nullptr;
            }
            return acc;
          }
          case UOp::VvMpyAdd: {
            if (p.saturate)
                return nullptr;
            NInstrPtr acc;
            for (int i = 0; i + 1 < u->num_args(); i += 2) {
                NInstrPtr a = lower(u->arg(i));
                NInstrPtr b = lower(u->arg(i + 1));
                if (!a || !b)
                    return nullptr;
                // Neon has no word-by-halfword trick: widen both
                // operands to the output width and multiply flat.
                NInstrPtr aw = widen_to(a, t.elem);
                NInstrPtr bw = widen_to(b, t.elem);
                if (!aw || !bw)
                    return nullptr;
                acc = acc ? NInstr::make(NOp::Mla, {acc, aw, bw})
                          : NInstr::make(NOp::Mul, {aw, bw});
            }
            return acc;
          }
          case UOp::AbsDiff:
            return binary(NOp::Abd, u);
          case UOp::Min:
            return binary(NOp::Min, u);
          case UOp::Max:
            return binary(NOp::Max, u);
          case UOp::Average:
            return binary(p.round ? NOp::Rhadd : NOp::Hadd, u);
          case UOp::ShiftLeft:
          case UOp::ShiftRight: {
            int64_t sh = 0;
            if (u->arg(1)->op() != UOp::HirLeaf ||
                !hir::as_const(u->arg(1)->leaf(), &sh))
                return nullptr;
            NInstrPtr x = lower(u->arg(0));
            if (!x)
                return nullptr;
            if (u->op() == UOp::ShiftLeft)
                return NInstr::make(NOp::Shl, {x}, {sh});
            if (p.round)
                return NInstr::make(NOp::Rshr, {x}, {sh});
            return NInstr::make(is_signed(t.elem) ? NOp::Sshr
                                                  : NOp::Ushr,
                                {x}, {sh});
          }
          case UOp::And:
            return binary(NOp::And, u);
          case UOp::Or:
            return binary(NOp::Orr, u);
          case UOp::Xor:
            return binary(NOp::Eor, u);
          case UOp::Not: {
            NInstrPtr x = lower(u->arg(0));
            return x ? NInstr::make(NOp::Not, {x}) : nullptr;
          }
          case UOp::Lt: {
            NInstrPtr a = lower(u->arg(0)), b = lower(u->arg(1));
            if (!a || !b)
                return nullptr;
            return NInstr::make(NOp::Cmgt, {b, a});
          }
          case UOp::Le: {
            NInstrPtr a = lower(u->arg(0)), b = lower(u->arg(1));
            if (!a || !b)
                return nullptr;
            return NInstr::make(
                NOp::Orr, {NInstr::make(NOp::Cmgt, {b, a}),
                           NInstr::make(NOp::Cmeq, {a, b})});
          }
          case UOp::Eq:
            return binary(NOp::Cmeq, u);
          case UOp::Select: {
            NInstrPtr c = lower(u->arg(0));
            NInstrPtr a = lower(u->arg(1));
            NInstrPtr b = lower(u->arg(2));
            if (!c || !a || !b)
                return nullptr;
            return NInstr::make(NOp::Bsl, {c, a, b});
          }
        }
        return nullptr;
    }

    NInstrPtr
    binary(NOp op, const UExprPtr &u)
    {
        NInstrPtr a = lower(u->arg(0));
        NInstrPtr b = lower(u->arg(1));
        if (!a || !b)
            return nullptr;
        return NInstr::make(op, {a, b});
    }

    std::unordered_map<const uir::UExpr *, NInstrPtr> memo_;
    std::vector<UExprPtr> pinned_;
};

std::optional<NInstrPtr>
select_greedy(const hir::ExprPtr &expr, const SelectOptions &opts)
{
    hir::ExprPtr normalized = hir::simplify(expr);
    synth::Spec spec = synth::Spec::from_expr(normalized);
    synth::ExamplePool pool(spec, opts.seed);
    synth::Verifier verifier(spec, pool);
    // The lifting stage is shared with the HVX backend — the §6 claim.
    synth::LiftResult lifted = synth::lift_to_uir(verifier);
    if (!lifted.expr)
        return std::nullopt;
    auto lowered = lower_to_neon(lifted.expr);
    if (!lowered)
        return std::nullopt;
    // Greedy path: still verified, against fresh examples.
    for (int i = 0; i < 12; ++i) {
        const Env &env = pool.at(i);
        if (!(hir::evaluate(normalized, env) ==
              evaluate(*lowered, env)))
            return std::nullopt;
    }
    return lowered;
}

} // namespace

std::optional<NInstrPtr>
lower_to_neon(const uir::UExprPtr &lifted)
{
    RAKE_USER_CHECK(lifted != nullptr, "null lifted expression");
    try {
        NeonSelector sel;
        NInstrPtr n = sel.lower(lifted);
        if (!n)
            return std::nullopt;
        return n;
    } catch (const UserError &) {
        return std::nullopt;
    }
}

std::optional<NInstrPtr>
select_instructions(const hir::ExprPtr &expr, const SelectOptions &opts,
                    synth::SynthStatus *status)
{
    RAKE_USER_CHECK(expr != nullptr, "null expression");
    if (status)
        *status = synth::SynthStatus::Ok;
    if (opts.greedy) {
        auto g = select_greedy(expr, opts);
        if (status && !g)
            *status = synth::SynthStatus::NoSolution;
        return g;
    }

    // The full synthesis treatment: shared lift + sketch/CEGIS/swizzle
    // search through the Neon backend.
    neon::Target target;
    auto isa = backend::make_neon_backend(target);
    synth::RakeOptions ropts;
    ropts.lower = opts.lower;
    ropts.verifier = opts.verifier;
    ropts.seed = opts.seed;
    ropts.use_cache = opts.use_cache;
    ropts.deadline = opts.deadline;
    ropts.cache_dir = opts.cache_dir;
    ropts.rules_file = opts.rules_file;
    auto r = synth::select_instructions_for(expr, *isa, ropts);
    if (!r || !r->instr) {
        if (status)
            *status = synth::SynthStatus::NoSolution;
        return std::nullopt;
    }
    if (status)
        *status = r->status;
    return std::static_pointer_cast<const NInstr>(r->instr);
}

} // namespace rake::neon
