#include "neon/cost.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace rake::neon {

int
latency_of(NOp op)
{
    switch (op) {
      // Loads and multiplies.
      case NOp::Ld1:
      case NOp::Mul:
      case NOp::Mla:
      case NOp::Mull:
      case NOp::Mlal:
        return 4;
      // Shifts, narrows, and cross-lane permutes.
      case NOp::Shl:
      case NOp::Sshr:
      case NOp::Ushr:
      case NOp::Rshr:
      case NOp::Xtn:
      case NOp::Qxtn:
      case NOp::Shrn:
      case NOp::Qrshrn:
      case NOp::Ext:
      case NOp::Zip:
      case NOp::Uzp:
      case NOp::Rev:
      case NOp::Tbl:
        return 3;
      // Simple ALU.
      case NOp::Add:
      case NOp::Qadd:
      case NOp::Sub:
      case NOp::Abd:
      case NOp::Min:
      case NOp::Max:
      case NOp::Hadd:
      case NOp::Rhadd:
      case NOp::Cmgt:
      case NOp::Cmeq:
      case NOp::Bsl:
      case NOp::And:
      case NOp::Orr:
      case NOp::Eor:
      case NOp::Not:
        return 2;
      // Free register plumbing.
      case NOp::Bitcast:
      case NOp::Dup:
      case NOp::Hole:
      case NOp::Lo:
      case NOp::Hi:
      case NOp::Combine:
        return 0;
    }
    return 2;
}

int
issue_count(const NInstr &n, const Target &target)
{
    if (is_free_movement(n.op()))
        return 0;
    int regs = target.regs_for(n.type());
    switch (n.op()) {
      // Narrows read the full-width input: issue once per input
      // register pair consumed.
      case NOp::Xtn:
      case NOp::Qxtn:
      case NOp::Shrn:
      case NOp::Qrshrn:
        regs = std::max(regs, target.regs_for(n.arg(0)->type()));
        break;
      default:
        break;
    }
    return std::max(1, regs);
}

namespace {

void
accumulate(const NInstr *n, const Target &target,
           std::unordered_set<const NInstr *> &seen, Cost &cost)
{
    if (!seen.insert(n).second)
        return;
    const int issues = issue_count(*n, target);
    cost.total_instructions += issues;
    cost.total_latency += latency_of(n->op()) * issues;
    if (n->op() == NOp::Ld1)
        cost.loads += issues;
    for (const auto &a : n->args())
        accumulate(a.get(), target, seen, cost);
}

} // namespace

Cost
cost_of(const NInstrPtr &n, const Target &target)
{
    RAKE_CHECK(n != nullptr, "cost of null instruction");
    Cost cost;
    std::unordered_set<const NInstr *> seen;
    accumulate(n.get(), target, seen, cost);
    return cost;
}

std::string
to_string(const Cost &c)
{
    std::ostringstream os;
    os << "{issues=" << c.total_instructions
       << ", latency=" << c.total_latency << ", loads=" << c.loads
       << "}";
    return os.str();
}

} // namespace rake::neon
