/**
 * @file
 * Neon machine model and cycle-cost estimator.
 *
 * The model mirrors the structure of hvx/cost.h at Neon's scale: a
 * Target describing the register file (128-bit Q registers), an
 * issue count per instruction, a latency table, and a DAG-walking
 * cost_of(). Wide logical vectors (the benchmark suite works on
 * 64-lane values) occupy several Q registers, so a non-free
 * instruction issues once per register it produces — narrows count
 * the wider input side. Register plumbing (vget_low/high, vcombine,
 * vreinterpret) and loop-invariant broadcasts are free.
 *
 * Neon has no per-resource slot structure worth modeling at this
 * granularity, so the headline scalar metric is simply the total
 * issue count; ties break on latency.
 */
#ifndef RAKE_NEON_COST_H
#define RAKE_NEON_COST_H

#include <string>

#include "neon/instr.h"

namespace rake::neon {

/** The modeled Neon machine. */
struct Target {
    int vector_bytes = 16; ///< one 128-bit Q register

    /** Q registers needed to hold a value of type `t`. */
    int
    regs_for(const VecType &t) const
    {
        const int total = t.total_bytes();
        if (total <= vector_bytes)
            return 1;
        return (total + vector_bytes - 1) / vector_bytes;
    }
};

/** Cost of one instruction DAG (shared nodes counted once). */
struct Cost {
    int total_instructions = 0; ///< issue slots
    int total_latency = 0;      ///< summed issue latencies
    int loads = 0;              ///< vld1 issues within the total

    /** Headline metric: Neon issues one instruction per cycle. */
    int
    scalar() const
    {
        return total_instructions;
    }

    bool
    better_than(const Cost &o) const
    {
        if (total_instructions != o.total_instructions)
            return total_instructions < o.total_instructions;
        return total_latency < o.total_latency;
    }
};

/** Issue slots one node occupies (0 for free movement). */
int issue_count(const NInstr &n, const Target &target);

/** Result latency in cycles of one issue of `op`. */
int latency_of(NOp op);

Cost cost_of(const NInstrPtr &n, const Target &target);

std::string to_string(const Cost &c);

} // namespace rake::neon

#endif // RAKE_NEON_COST_H
