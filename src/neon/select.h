/**
 * @file
 * Uber-Instruction-IR -> Neon instruction selection (paper §6).
 *
 * The Neon port originally demonstrated retargeting with a greedy
 * one-template mapping per uber-instruction. It now goes through the
 * same synthesis stack as HVX — sketch grammar, CEGIS verification,
 * swizzle synthesis under a cost budget, backtracking, and the
 * cross-expression cache — via backend::make_neon_backend(). The
 * greedy mapping is kept behind SelectOptions::greedy as the ablation
 * baseline.
 */
#ifndef RAKE_NEON_SELECT_H
#define RAKE_NEON_SELECT_H

#include <optional>

#include "base/value.h"
#include "neon/instr.h"
#include "neon/interp.h"
#include "synth/lower.h"
#include "synth/verify.h"
#include "uir/uexpr.h"

namespace rake::neon {

/** Configuration of one Neon selection run. */
struct SelectOptions {
    /** Use the old greedy one-template mapping (ablation baseline). */
    bool greedy = false;

    synth::LowerOptions lower;
    synth::VerifierOptions verifier;
    uint64_t seed = 1;     ///< example-pool seed
    bool use_cache = true; ///< consult the cross-expression cache

    SelectOptions()
    {
        // Neon compute ops never reorder lanes, so the §5.1 layout
        // search would only enumerate dead ends.
        lower.layouts = false;
    }
};

/**
 * Greedily lower a lifted expression to Neon. Returns nullopt when an
 * uber-instruction has no mapping in the greedy repertoire (e.g.
 * saturating multiply-add chains).
 */
std::optional<NInstrPtr> lower_to_neon(const uir::UExprPtr &lifted);

/**
 * Full flow: lift the HIR expression with the shared lifting stage,
 * then search for the lowest-cost Neon lowering (or, under
 * opts.greedy, apply the one-template mapping). Every returned result
 * has been verified against the HIR reference on concrete examples.
 */
std::optional<NInstrPtr> select_instructions(const hir::ExprPtr &expr,
                                             const SelectOptions &opts
                                             = {});

} // namespace rake::neon

#endif // RAKE_NEON_SELECT_H
