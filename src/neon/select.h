/**
 * @file
 * Preliminary Uber-Instruction-IR -> Neon lowering and interpreter
 * (paper §6): demonstrates that the HVX-derived uber-instructions
 * retarget to ARM with only a new per-instruction mapping — the
 * lifting stage is reused verbatim.
 */
#ifndef RAKE_NEON_SELECT_H
#define RAKE_NEON_SELECT_H

#include <optional>

#include "base/value.h"
#include "neon/instr.h"
#include "uir/uexpr.h"

namespace rake::neon {

/** Evaluate a Neon instruction tree (linear lane semantics). */
Value evaluate(const NInstrPtr &n, const Env &env);

/**
 * Greedily lower a lifted expression to Neon. Returns nullopt when an
 * uber-instruction has no mapping in this preliminary port (e.g.
 * saturating multiply-add chains).
 */
std::optional<NInstrPtr> lower_to_neon(const uir::UExprPtr &lifted);

/**
 * Full flow: lift the HIR expression with the shared lifting stage,
 * then lower to Neon. The caller should cross-check the result
 * against the HIR interpreter (tests do).
 */
std::optional<NInstrPtr> select_instructions(const hir::ExprPtr &expr);

} // namespace rake::neon

#endif // RAKE_NEON_SELECT_H
