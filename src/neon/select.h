/**
 * @file
 * Uber-Instruction-IR -> Neon instruction selection (paper §6).
 *
 * The Neon port originally demonstrated retargeting with a greedy
 * one-template mapping per uber-instruction. It now goes through the
 * same synthesis stack as HVX — sketch grammar, CEGIS verification,
 * swizzle synthesis under a cost budget, backtracking, and the
 * cross-expression cache — via backend::make_neon_backend(). The
 * greedy mapping is kept behind SelectOptions::greedy as the ablation
 * baseline.
 */
#ifndef RAKE_NEON_SELECT_H
#define RAKE_NEON_SELECT_H

#include <optional>

#include "base/value.h"
#include "neon/instr.h"
#include "neon/interp.h"
#include "support/deadline.h"
#include "synth/lower.h"
#include "synth/rake.h"
#include "synth/verify.h"
#include "uir/uexpr.h"

namespace rake::neon {

/** Configuration of one Neon selection run. */
struct SelectOptions {
    /** Use the old greedy one-template mapping (ablation baseline). */
    bool greedy = false;

    synth::LowerOptions lower;
    synth::VerifierOptions verifier;
    uint64_t seed = 1;     ///< example-pool seed
    bool use_cache = true; ///< consult the cross-expression cache

    /**
     * Wall-clock budget for the synthesis path (see
     * synth::RakeOptions::deadline). On expiry selection degrades to
     * the greedy mapping, reported through the `status` out-param.
     * The greedy path itself ignores the deadline — it is the
     * fallback and performs no search.
     */
    Deadline deadline;

    /** Persistent-cache directory (see synth::RakeOptions::cache_dir);
     *  "" disables the disk tier. The greedy path never consults it. */
    std::string cache_dir;

    /** Mined rewrite-rule table (see synth::RakeOptions::rules_file);
     *  "" disables the rule-first stage. Greedy never consults it. */
    std::string rules_file;

    SelectOptions()
    {
        // Neon compute ops never reorder lanes, so the §5.1 layout
        // search would only enumerate dead ends.
        lower.layouts = false;
    }
};

/**
 * Greedily lower a lifted expression to Neon. Returns nullopt when an
 * uber-instruction has no mapping in the greedy repertoire (e.g.
 * saturating multiply-add chains).
 */
std::optional<NInstrPtr> lower_to_neon(const uir::UExprPtr &lifted);

/**
 * Full flow: lift the HIR expression with the shared lifting stage,
 * then search for the lowest-cost Neon lowering (or, under
 * opts.greedy, apply the one-template mapping). Every returned result
 * has been verified against the HIR reference on concrete examples.
 *
 * `status`, when non-null, receives the timeout taxonomy of the run:
 * Ok, NoSolution (returned nullopt), or TimedOut (the deadline fired
 * and the returned program is the greedy degradation).
 */
std::optional<NInstrPtr> select_instructions(const hir::ExprPtr &expr,
                                             const SelectOptions &opts
                                             = {},
                                             synth::SynthStatus *status
                                             = nullptr);

} // namespace rake::neon

#endif // RAKE_NEON_SELECT_H
