/**
 * @file
 * Reusable Neon interpreter context (linear lane semantics).
 *
 * Mirrors the allocation-lean protocol of hvx::Interpreter so the
 * CEGIS loop can evaluate Neon candidate DAGs the same way it does
 * HVX ones: reset() binds an environment and clears the per-node
 * memo, eval() returns references that stay valid until the next
 * reset(), and the ??-hole oracle is sticky across resets (one
 * candidate is checked against many environments).
 */
#ifndef RAKE_NEON_INTERP_H
#define RAKE_NEON_INTERP_H

#include <functional>
#include <unordered_map>

#include "base/value.h"
#include "neon/instr.h"

namespace rake::neon {

/** Answers ??-hole reads during sketch evaluation. */
using HoleOracle = std::function<Value(int, const Env &)>;

/** Memoizing evaluator over one environment at a time. */
class Interpreter
{
  public:
    Interpreter() = default;
    Interpreter(const Interpreter &) = delete;
    Interpreter &operator=(const Interpreter &) = delete;

    /** Sticky across reset(); pass nullptr for hole-free DAGs. */
    void
    set_oracle(HoleOracle oracle)
    {
        oracle_ = std::move(oracle);
    }

    /** Bind `env` (kept by reference) and clear the memo. */
    void
    reset(const Env &env)
    {
        env_ = &env;
        memo_.clear();
    }

    /**
     * Evaluate under the bound environment. The reference stays valid
     * until the next reset() (unordered_map references are stable
     * under rehash).
     */
    const Value &eval(const NInstrPtr &n);

  private:
    const Value &eval_node(const NInstr &n);

    const Env *env_ = nullptr;
    HoleOracle oracle_;
    std::unordered_map<const NInstr *, Value> memo_;
};

/** One-shot evaluation of a hole-free instruction DAG. */
Value evaluate(const NInstrPtr &n, const Env &env);

} // namespace rake::neon

#endif // RAKE_NEON_INTERP_H
