#include "neon/interp.h"

#include <algorithm>

#include "base/arith.h"
#include "hir/interp.h"
#include "support/error.h"

namespace rake::neon {

const Value &
Interpreter::eval(const NInstrPtr &n)
{
    RAKE_CHECK(n != nullptr, "evaluate of null instruction");
    RAKE_CHECK(env_ != nullptr, "eval before reset");
    return eval_node(*n);
}

const Value &
Interpreter::eval_node(const NInstr &n)
{
    auto it = memo_.find(&n);
    if (it != memo_.end())
        return it->second;

    const Env &env = *env_;
    const VecType t = n.type();
    const ScalarType s = t.elem;
    const int L = t.lanes;

    // Evaluate operands first: recursive inserts may rehash the memo,
    // but unordered_map guarantees element references stay valid.
    const Value *a[3] = {nullptr, nullptr, nullptr};
    for (int i = 0; i < n.num_args() && i < 3; ++i)
        a[i] = &eval_node(*n.arg(i));
    const std::vector<int64_t> &im = n.imms();

    Value v = Value::zero(t);
    switch (n.op()) {
      case NOp::Ld1: {
        const Buffer &buf = env.buffer(n.load_ref().buffer);
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, buf.at(env.x + n.load_ref().dx + i,
                                  env.y + n.load_ref().dy));
        break;
      }
      case NOp::Dup: {
        const Value sv = hir::evaluate(n.dup_value(), env);
        v = Value::splat(s, L, sv.as_scalar());
        break;
      }
      case NOp::Hole:
        RAKE_CHECK(oracle_ != nullptr,
                   "?? hole evaluated without an oracle");
        v = oracle_(n.hole_id(), env);
        break;
      case NOp::Bitcast:
      case NOp::Movl:
      case NOp::Xtn:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, (*a[0])[i]);
        break;
      case NOp::Qxtn:
        for (int i = 0; i < L; ++i)
            v[i] = saturate(s, (*a[0])[i]);
        break;
      case NOp::Shrn:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, shift_right((*a[0])[i],
                                       static_cast<int>(im[0])));
        break;
      case NOp::Qrshrn:
        for (int i = 0; i < L; ++i)
            v[i] = saturate(s, shift_right((*a[0])[i],
                                           static_cast<int>(im[0]),
                                           true));
        break;
      case NOp::Add:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, (*a[0])[i] + (*a[1])[i]);
        break;
      case NOp::Qadd:
        for (int i = 0; i < L; ++i)
            v[i] = saturate(s, (*a[0])[i] + (*a[1])[i]);
        break;
      case NOp::Sub:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, (*a[0])[i] - (*a[1])[i]);
        break;
      case NOp::Mul:
      case NOp::Mull:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, (*a[0])[i] * (*a[1])[i]);
        break;
      case NOp::Mla:
      case NOp::Mlal:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, (*a[0])[i] + (*a[1])[i] * (*a[2])[i]);
        break;
      case NOp::Abd:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, abs_diff((*a[0])[i], (*a[1])[i]));
        break;
      case NOp::Min:
        for (int i = 0; i < L; ++i)
            v[i] = std::min((*a[0])[i], (*a[1])[i]);
        break;
      case NOp::Max:
        for (int i = 0; i < L; ++i)
            v[i] = std::max((*a[0])[i], (*a[1])[i]);
        break;
      case NOp::Hadd:
        for (int i = 0; i < L; ++i)
            v[i] = average(s, (*a[0])[i], (*a[1])[i], false);
        break;
      case NOp::Rhadd:
        for (int i = 0; i < L; ++i)
            v[i] = average(s, (*a[0])[i], (*a[1])[i], true);
        break;
      case NOp::Shl:
        for (int i = 0; i < L; ++i)
            v[i] = shift_left(s, (*a[0])[i], static_cast<int>(im[0]));
        break;
      case NOp::Sshr:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, shift_right((*a[0])[i],
                                       static_cast<int>(im[0])));
        break;
      case NOp::Ushr:
        for (int i = 0; i < L; ++i)
            v[i] = logical_shift_right(s, (*a[0])[i],
                                       static_cast<int>(im[0]));
        break;
      case NOp::Rshr:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, shift_right((*a[0])[i],
                                       static_cast<int>(im[0]), true));
        break;
      case NOp::Cmgt:
        for (int i = 0; i < L; ++i)
            v[i] = (*a[0])[i] > (*a[1])[i] ? 1 : 0;
        break;
      case NOp::Cmeq:
        for (int i = 0; i < L; ++i)
            v[i] = (*a[0])[i] == (*a[1])[i] ? 1 : 0;
        break;
      case NOp::Bsl:
        for (int i = 0; i < L; ++i)
            v[i] = (*a[0])[i] != 0 ? (*a[1])[i] : (*a[2])[i];
        break;
      case NOp::And:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, (*a[0])[i] & (*a[1])[i]);
        break;
      case NOp::Orr:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, (*a[0])[i] | (*a[1])[i]);
        break;
      case NOp::Eor:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, (*a[0])[i] ^ (*a[1])[i]);
        break;
      case NOp::Not:
        for (int i = 0; i < L; ++i)
            v[i] = wrap(s, ~(*a[0])[i]);
        break;
      case NOp::Lo:
        for (int i = 0; i < L; ++i)
            v[i] = (*a[0])[i];
        break;
      case NOp::Hi:
        for (int i = 0; i < L; ++i)
            v[i] = (*a[0])[i + L];
        break;
      case NOp::Combine: {
        const int la = n.arg(0)->type().lanes;
        for (int i = 0; i < L; ++i)
            v[i] = i < la ? (*a[0])[i] : (*a[1])[i - la];
        break;
      }
      case NOp::Ext: {
        const int r = static_cast<int>(im[0]);
        for (int i = 0; i < L; ++i)
            v[i] = i + r < L ? (*a[0])[i + r] : (*a[1])[i + r - L];
        break;
      }
      case NOp::Zip: {
        const int h = L / 2;
        for (int i = 0; i < h; ++i) {
            v[2 * i] = (*a[0])[i];
            v[2 * i + 1] = (*a[0])[h + i];
        }
        break;
      }
      case NOp::Uzp: {
        const int h = L / 2;
        for (int j = 0; j < h; ++j) {
            v[j] = (*a[0])[2 * j];
            v[h + j] = (*a[0])[2 * j + 1];
        }
        break;
      }
      case NOp::Rev:
        for (int i = 0; i < L; ++i)
            v[i] = (*a[0])[L - 1 - i];
        break;
      case NOp::Tbl: {
        const int tl = n.arg(0)->type().lanes;
        for (int i = 0; i < L; ++i) {
            const int64_t idx = im[i];
            // Out-of-range indices read as zero (vtbl semantics).
            v[i] = idx >= 0 && idx < tl ? (*a[0])[idx] : 0;
        }
        break;
      }
    }
    return memo_.emplace(&n, std::move(v)).first->second;
}

Value
evaluate(const NInstrPtr &n, const Env &env)
{
    Interpreter interp;
    interp.reset(env);
    return interp.eval(n);
}

} // namespace rake::neon
