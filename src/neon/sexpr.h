/**
 * @file
 * S-expression interchange for synthesized Neon code — the Neon
 * analog of hvx/sexpr.h, written for the persistent synthesis cache
 * (synth/persist.h): a selected NInstr DAG round-trips through text
 * so a warm cache can replay it in a later process.
 */
#ifndef RAKE_NEON_SEXPR_H
#define RAKE_NEON_SEXPR_H

#include <string>

#include "neon/instr.h"

namespace rake::neon {

/** Render an instruction DAG as one s-expression. */
std::string to_sexpr(const NInstrPtr &n);

/** Parse an instruction back; throws UserError on malformed input. */
NInstrPtr parse_instr(const std::string &text);

} // namespace rake::neon

#endif // RAKE_NEON_SEXPR_H
