/**
 * @file
 * Preliminary ARM Neon backend (paper §6, "Extending to other ISAs").
 *
 * The paper reports that the uber-instructions derived for HVX can be
 * re-used for ARM "with only slight modifications", because both ISAs
 * target the same fixed-point compute patterns. This module
 * demonstrates exactly that: the *same* Uber-Instruction IR produced
 * by the lifting stage lowers onto a Neon instruction model instead.
 *
 * Neon differs from HVX in the dimension the paper highlights: its
 * compute instructions perform no implicit data movement (no
 * deinterleaved register pairs), so the layout parameterization of
 * §5.1 is unnecessary and the lowering is a direct greedy mapping —
 * the "preliminary" port the paper describes, not a full search.
 */
#ifndef RAKE_NEON_INSTR_H
#define RAKE_NEON_INSTR_H

#include <memory>
#include <string>
#include <vector>

#include "base/type.h"
#include "hir/expr.h"

namespace rake::neon {

/** Neon opcode families (type variants selected by the node type). */
enum class NOp : uint8_t {
    Ld1,    ///< vector load
    Dup,    ///< broadcast a scalar (vdup)
    Bitcast,///< free register reinterpretation (vreinterpret)
    Movl,   ///< widening move (sxtl / uxtl)
    Add,    ///< vadd
    Qadd,   ///< saturating add (vqadd)
    Sub,    ///< vsub
    Mul,    ///< non-widening multiply (vmul)
    Mla,    ///< non-widening multiply-accumulate (vmla)
    Mull,   ///< widening multiply (vmull)
    Mlal,   ///< widening multiply-accumulate (vmlal)
    Abd,    ///< absolute difference (vabd)
    Min,    ///< vmin
    Max,    ///< vmax
    Hadd,   ///< halving add (vhadd)
    Rhadd,  ///< rounding halving add (vrhadd)
    Shl,    ///< shift left immediate (vshl)
    Sshr,   ///< arithmetic shift right immediate (vshr.s)
    Ushr,   ///< logical shift right immediate (vshr.u)
    Rshr,   ///< rounding shift right immediate (vrshr)
    Xtn,    ///< truncating narrow (vmovn)
    Qxtn,   ///< saturating narrow (vqmovn / vqmovun)
    Shrn,   ///< truncating shift-right narrow (vshrn)
    Qrshrn, ///< saturating rounding shift-right narrow (vqrshrn/un)
    Cmgt,   ///< compare greater-than (vcgt)
    Cmeq,   ///< compare equal (vceq)
    Bsl,    ///< bitwise select (vbsl)
    And,
    Orr,
    Eor,
    Not,

    // Data movement (the swizzle repertoire) and sketch holes.
    Hole,   ///< ??-hole awaiting swizzle synthesis (search-time only)
    Lo,     ///< low half of a register pair (vget_low)
    Hi,     ///< high half of a register pair (vget_high)
    Combine,///< concatenate two halves (vcombine)
    Ext,    ///< lane-wise funnel extract (vext)
    Zip,    ///< interleave the two halves in place (vzip)
    Uzp,    ///< deinterleave even/odd lanes in place (vuzp)
    Rev,    ///< reverse all lanes (vrev)
    Tbl,    ///< table lookup with a static index list (vtbl)
};

std::string to_string(NOp op);

/**
 * Ops that cost no issue slot: register renames and loop-invariant
 * broadcasts (vdup of a kernel constant is hoisted out of the loop),
 * plus the search-time Hole placeholder. Shared by the instruction
 * counter and the cycle-cost model.
 */
bool is_free_movement(NOp op);

class NInstr;
using NInstrPtr = std::shared_ptr<const NInstr>;

/** An immutable Neon instruction node (linear lane semantics). */
class NInstr
{
  public:
    static NInstrPtr make_load(hir::LoadRef ref, VecType type);
    static NInstrPtr make_dup(hir::ExprPtr scalar, int lanes);
    static NInstrPtr make_hole(int id, VecType type);
    static NInstrPtr make(NOp op, std::vector<NInstrPtr> args,
                          std::vector<int64_t> imms = {},
                          ScalarType out_elem = ScalarType::Int32);

    NOp op() const { return op_; }
    const VecType &type() const { return type_; }
    const std::vector<NInstrPtr> &args() const { return args_; }
    const NInstrPtr &arg(int i) const { return args_[i]; }
    int num_args() const { return static_cast<int>(args_.size()); }
    const std::vector<int64_t> &imms() const { return imms_; }
    const hir::LoadRef &load_ref() const { return load_; }
    const hir::ExprPtr &dup_value() const { return dup_; }

    /** Hole table index (Hole nodes only). */
    int
    hole_id() const
    {
        RAKE_CHECK(op_ == NOp::Hole, "hole_id of a non-hole");
        return static_cast<int>(imms_[0]);
    }

    /**
     * Instructions in the DAG (shared subtrees counted once), not
     * counting free register plumbing — see is_free_movement().
     */
    int instruction_count() const;

  private:
    NInstr(NOp op, VecType type, std::vector<NInstrPtr> args,
           std::vector<int64_t> imms, hir::LoadRef load,
           hir::ExprPtr dup)
        : op_(op), type_(type), args_(std::move(args)),
          imms_(std::move(imms)), load_(load), dup_(std::move(dup))
    {
    }

    NOp op_;
    VecType type_;
    std::vector<NInstrPtr> args_;
    std::vector<int64_t> imms_;
    hir::LoadRef load_;
    hir::ExprPtr dup_;
};

/** Flat listing renderer (one instruction per line). */
std::string to_listing(const NInstrPtr &n);

} // namespace rake::neon

#endif // RAKE_NEON_INSTR_H
