#include "neon/instr.h"

#include <map>
#include <sstream>
#include <unordered_set>

#include "hir/printer.h"
#include "support/error.h"

namespace rake::neon {

std::string
to_string(NOp op)
{
    switch (op) {
      case NOp::Ld1:
        return "vld1";
      case NOp::Dup:
        return "vdup";
      case NOp::Bitcast:
        return "vreinterpret";
      case NOp::Movl:
        return "vmovl";
      case NOp::Add:
        return "vadd";
      case NOp::Qadd:
        return "vqadd";
      case NOp::Sub:
        return "vsub";
      case NOp::Mul:
        return "vmul";
      case NOp::Mla:
        return "vmla";
      case NOp::Mull:
        return "vmull";
      case NOp::Mlal:
        return "vmlal";
      case NOp::Abd:
        return "vabd";
      case NOp::Min:
        return "vmin";
      case NOp::Max:
        return "vmax";
      case NOp::Hadd:
        return "vhadd";
      case NOp::Rhadd:
        return "vrhadd";
      case NOp::Shl:
        return "vshl";
      case NOp::Sshr:
        return "vshr.s";
      case NOp::Ushr:
        return "vshr.u";
      case NOp::Rshr:
        return "vrshr";
      case NOp::Xtn:
        return "vmovn";
      case NOp::Qxtn:
        return "vqmovn";
      case NOp::Shrn:
        return "vshrn";
      case NOp::Qrshrn:
        return "vqrshrn";
      case NOp::Cmgt:
        return "vcgt";
      case NOp::Cmeq:
        return "vceq";
      case NOp::Bsl:
        return "vbsl";
      case NOp::And:
        return "vand";
      case NOp::Orr:
        return "vorr";
      case NOp::Eor:
        return "veor";
      case NOp::Not:
        return "vmvn";
      case NOp::Hole:
        return "??";
      case NOp::Lo:
        return "vget_low";
      case NOp::Hi:
        return "vget_high";
      case NOp::Combine:
        return "vcombine";
      case NOp::Ext:
        return "vext";
      case NOp::Zip:
        return "vzip";
      case NOp::Uzp:
        return "vuzp";
      case NOp::Rev:
        return "vrev";
      case NOp::Tbl:
        return "vtbl";
    }
    RAKE_UNREACHABLE("bad NOp");
}

bool
is_free_movement(NOp op)
{
    switch (op) {
      case NOp::Bitcast:
      case NOp::Dup:
      case NOp::Hole:
      case NOp::Lo:
      case NOp::Hi:
      case NOp::Combine:
        return true;
      default:
        return false;
    }
}

NInstrPtr
NInstr::make_load(hir::LoadRef ref, VecType type)
{
    RAKE_USER_CHECK(type.lanes >= 1, "vld1 must load >= 1 lane");
    return NInstrPtr(
        new NInstr(NOp::Ld1, type, {}, {}, ref, nullptr));
}

NInstrPtr
NInstr::make_dup(hir::ExprPtr scalar, int lanes)
{
    RAKE_USER_CHECK(scalar != nullptr && scalar->type().lanes == 1,
                    "vdup payload must be scalar");
    VecType t(scalar->type().elem, lanes);
    return NInstrPtr(new NInstr(NOp::Dup, t, {}, {}, hir::LoadRef{},
                                std::move(scalar)));
}

NInstrPtr
NInstr::make_hole(int id, VecType type)
{
    RAKE_USER_CHECK(id >= 0, "hole id must be non-negative");
    return NInstrPtr(new NInstr(NOp::Hole, type, {}, {id},
                                hir::LoadRef{}, nullptr));
}

NInstrPtr
NInstr::make(NOp op, std::vector<NInstrPtr> args,
             std::vector<int64_t> imms, ScalarType out_elem)
{
    RAKE_USER_CHECK(op != NOp::Ld1 && op != NOp::Dup && op != NOp::Hole,
                    "use the dedicated factory");
    RAKE_USER_CHECK(!args.empty(), to_string(op) << " needs operands");
    for (const auto &a : args)
        RAKE_USER_CHECK(a != nullptr, "null operand");
    const VecType a0 = args[0]->type();
    VecType result = a0;

    switch (op) {
      case NOp::Bitcast:
        RAKE_USER_CHECK(bits(out_elem) == bits(a0.elem),
                        "vreinterpret here only swaps signedness");
        result = a0.with_elem(out_elem);
        break;
      case NOp::Movl:
        RAKE_USER_CHECK(args.size() == 1 && bits(a0.elem) < 64,
                        "bad vmovl");
        result = a0.with_elem(widen(a0.elem));
        break;
      case NOp::Mull:
        RAKE_USER_CHECK(args.size() == 2 &&
                            args[1]->type().elem == a0.elem,
                        "vmull operand mismatch");
        result = a0.with_elem(widen(a0.elem));
        break;
      case NOp::Mlal:
        RAKE_USER_CHECK(args.size() == 3 &&
                            args[1]->type().elem ==
                                args[2]->type().elem &&
                            bits(a0.elem) ==
                                2 * bits(args[1]->type().elem),
                        "vmlal operand mismatch");
        result = a0;
        break;
      case NOp::Mla:
        RAKE_USER_CHECK(args.size() == 3, "vmla is ternary");
        break;
      case NOp::Xtn:
      case NOp::Qxtn:
        RAKE_USER_CHECK(args.size() == 1 && bits(a0.elem) > 8,
                        "bad narrow");
        result = op == NOp::Xtn ? a0.with_elem(narrow(a0.elem))
                                : a0.with_elem(out_elem);
        if (op == NOp::Qxtn) {
            RAKE_USER_CHECK(bits(out_elem) * 2 == bits(a0.elem),
                            "vqmovn must halve the width");
        }
        break;
      case NOp::Shrn:
      case NOp::Qrshrn:
        RAKE_USER_CHECK(args.size() == 1 && imms.size() == 1 &&
                            bits(a0.elem) > 8,
                        "bad narrowing shift");
        result = op == NOp::Shrn ? a0.with_elem(narrow(a0.elem))
                                 : a0.with_elem(out_elem);
        if (op == NOp::Qrshrn) {
            RAKE_USER_CHECK(bits(out_elem) * 2 == bits(a0.elem),
                            "vqrshrn must halve the width");
        }
        break;
      case NOp::Shl:
      case NOp::Sshr:
      case NOp::Ushr:
      case NOp::Rshr:
        RAKE_USER_CHECK(args.size() == 1 && imms.size() == 1,
                        "shift takes one operand and one immediate");
        break;
      case NOp::Cmgt:
      case NOp::Cmeq:
        RAKE_USER_CHECK(args.size() == 2, "compare is binary");
        result = a0.with_elem(ScalarType::Int8);
        break;
      case NOp::Bsl:
        RAKE_USER_CHECK(args.size() == 3 &&
                            args[1]->type() == args[2]->type(),
                        "vbsl operand mismatch");
        result = args[1]->type();
        break;
      case NOp::Not:
        RAKE_USER_CHECK(args.size() == 1, "vmvn is unary");
        break;
      case NOp::Lo:
      case NOp::Hi:
        RAKE_USER_CHECK(args.size() == 1 && a0.lanes % 2 == 0,
                        "half extraction needs an even-lane operand");
        result = VecType(a0.elem, a0.lanes / 2);
        break;
      case NOp::Combine:
        RAKE_USER_CHECK(args.size() == 2 && args[1]->type() == a0,
                        "vcombine operand mismatch");
        result = VecType(a0.elem, a0.lanes * 2);
        break;
      case NOp::Ext:
        RAKE_USER_CHECK(args.size() == 2 && args[1]->type() == a0 &&
                            imms.size() == 1 && imms[0] > 0 &&
                            imms[0] < a0.lanes,
                        "bad vext");
        break;
      case NOp::Zip:
      case NOp::Uzp:
        RAKE_USER_CHECK(args.size() == 1 && a0.lanes % 2 == 0,
                        "zip/uzp need an even-lane operand");
        break;
      case NOp::Rev:
        RAKE_USER_CHECK(args.size() == 1, "vrev is unary");
        break;
      case NOp::Tbl:
        RAKE_USER_CHECK(args.size() == 1 && !imms.empty(),
                        "vtbl needs a table and an index list");
        result = VecType(a0.elem, static_cast<int>(imms.size()));
        break;
      default:
        RAKE_USER_CHECK(args.size() == 2 && args[1]->type() == a0,
                        to_string(op) << " operand mismatch");
        break;
    }
    return NInstrPtr(new NInstr(op, result, std::move(args),
                                std::move(imms), hir::LoadRef{},
                                nullptr));
}

namespace {

void
count_instrs(const NInstr *n, std::unordered_set<const NInstr *> &seen,
             int &count)
{
    if (!seen.insert(n).second)
        return;
    if (!is_free_movement(n->op()))
        ++count;
    for (const auto &a : n->args())
        count_instrs(a.get(), seen, count);
}

} // namespace

int
NInstr::instruction_count() const
{
    std::unordered_set<const NInstr *> seen;
    int count = 0;
    count_instrs(this, seen, count);
    return count;
}

namespace {

int
emit(const NInstrPtr &n, std::map<const NInstr *, int> &reg,
     std::ostringstream &os, int &next)
{
    auto it = reg.find(n.get());
    if (it != reg.end())
        return it->second;
    std::vector<int> arg_regs;
    for (const auto &a : n->args())
        arg_regs.push_back(emit(a, reg, os, next));
    const int r = next++;
    reg.emplace(n.get(), r);
    os << "  q" << r << ":" << to_string(n->type()) << " = "
       << to_string(n->op());
    os << "(";
    bool first = true;
    if (n->op() == NOp::Ld1) {
        os << hir::to_string(n->load_ref());
        first = false;
    }
    if (n->op() == NOp::Dup) {
        os << hir::to_string(n->dup_value());
        first = false;
    }
    for (int ar : arg_regs) {
        if (!first)
            os << ", ";
        first = false;
        os << "q" << ar;
    }
    for (int64_t imm : n->imms()) {
        if (!first)
            os << ", ";
        first = false;
        os << "#" << imm;
    }
    os << ")\n";
    return r;
}

} // namespace

std::string
to_listing(const NInstrPtr &n)
{
    RAKE_CHECK(n != nullptr, "printing null instruction");
    std::ostringstream os;
    std::map<const NInstr *, int> reg;
    int next = 0;
    emit(n, reg, os, next);
    return os.str();
}

} // namespace rake::neon
