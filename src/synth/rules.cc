#include "synth/rules.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>

#include <unistd.h>

#include "hir/interp.h"
#include "hir/printer.h"
#include "support/error.h"
#include "synth/spec.h"
#include "synth/z3_verify.h"

namespace rake::synth {

namespace {

constexpr const char *kMagic = "rake-rules";
constexpr const char *kHolePrefix = "?h";

/** Serialize a parsed s-expression back to the canonical single-line
 *  text the printers emit (single spaces, no trailing whitespace). */
void
write_tree(std::ostringstream &os, const hir::SExpr &s)
{
    if (s.is_atom) {
        os << s.atom;
        return;
    }
    os << "(";
    for (size_t i = 0; i < s.items.size(); ++i) {
        if (i > 0)
            os << " ";
        write_tree(os, s.items[i]);
    }
    os << ")";
}

std::string
tree_text(const hir::SExpr &s)
{
    std::ostringstream os;
    write_tree(os, s);
    return os.str();
}

/** Is `s` a (const <type> <v>) or (var <type> <n>) leaf list? */
bool
is_typed_leaf(const hir::SExpr &s, std::string *head = nullptr)
{
    if (s.is_atom || s.items.size() != 3)
        return false;
    if (!s.items[0].is_atom || !s.items[1].is_atom || !s.items[2].is_atom)
        return false;
    if (s.items[0].atom != "const" && s.items[0].atom != "var")
        return false;
    if (head)
        *head = s.items[0].atom;
    return true;
}

/** Element part of a type atom ("u16x128" -> "u16"). */
std::string
elem_of(const std::string &type_atom)
{
    const size_t x = type_atom.find('x');
    return x == std::string::npos ? type_atom : type_atom.substr(0, x);
}

/** Lane count of a type atom ("u16x128" -> 128, "u16" -> 1). */
int
lanes_of(const std::string &type_atom)
{
    const size_t x = type_atom.find('x');
    if (x == std::string::npos)
        return 1;
    return std::atoi(type_atom.c_str() + x + 1);
}

bool
is_hole_atom(const std::string &atom)
{
    return atom.rfind(kHolePrefix, 0) == 0;
}

std::string
hole_atom(size_t index)
{
    return kHolePrefix + std::to_string(index);
}

/**
 * Identity of one generalization candidate: the same (kind, element
 * type, concrete atom) everywhere on both sides becomes one hole, so
 * patterns stay non-linear where the witness repeated a value.
 */
struct HoleSite {
    RuleHole::Kind kind;
    std::string elem;
    std::string atom;

    bool
    matches(const hir::SExpr &leaf) const
    {
        const bool is_const = leaf.items[0].atom == "const";
        if ((kind == RuleHole::Kind::Const) != is_const)
            return false;
        return elem == elem_of(leaf.items[1].atom) &&
               atom == leaf.items[2].atom;
    }
};

/** Pre-order const/var leaves of a tree, deduplicated, stable order. */
std::vector<HoleSite>
collect_sites(const hir::SExpr &t)
{
    std::vector<HoleSite> out;
    auto seen = [&](const HoleSite &h) {
        for (const HoleSite &o : out) {
            if (o.kind == h.kind && o.elem == h.elem && o.atom == h.atom)
                return true;
        }
        return false;
    };
    std::function<void(const hir::SExpr &)> walk =
        [&](const hir::SExpr &s) {
            std::string head;
            if (is_typed_leaf(s, &head)) {
                HoleSite site{head == "const" ? RuleHole::Kind::Const
                                              : RuleHole::Kind::Var,
                              elem_of(s.items[1].atom), s.items[2].atom};
                if (!seen(site))
                    out.push_back(std::move(site));
                return;
            }
            if (!s.is_atom) {
                for (const hir::SExpr &item : s.items)
                    walk(item);
            }
        };
    walk(t);
    return out;
}

bool
tree_has_site(const hir::SExpr &t, const HoleSite &site)
{
    if (is_typed_leaf(t))
        return site.matches(t);
    if (t.is_atom)
        return false;
    for (const hir::SExpr &item : t.items) {
        if (tree_has_site(item, site))
            return true;
    }
    return false;
}

/** Copy of `t` with every active site's value atom holed out. */
hir::SExpr
holed(const hir::SExpr &t, const std::vector<HoleSite> &active)
{
    hir::SExpr out = t;
    if (is_typed_leaf(out)) {
        for (size_t i = 0; i < active.size(); ++i) {
            if (active[i].matches(out)) {
                out.items[2].atom = hole_atom(i);
                return out;
            }
        }
        return out;
    }
    if (!out.is_atom) {
        for (hir::SExpr &item : out.items)
            item = holed(item, active);
    }
    return out;
}

/** The fresh symbolic scalar standing in for hole `i` during the
 *  one-time verification. */
std::string
symbolic_name(size_t i)
{
    return "_rh" + std::to_string(i);
}

/**
 * Copy of `t` with every active site replaced by a fresh symbolic
 * scalar: a const leaf becomes (var <elem> _rhI) — broadcast-wrapped
 * when the leaf was vector-typed — and a var leaf is alpha-renamed.
 * Proving the pair equal on this tree proves the rule for every hole
 * value at once.
 */
hir::SExpr
symbolized(const hir::SExpr &t, const std::vector<HoleSite> &active)
{
    hir::SExpr out = t;
    if (is_typed_leaf(out)) {
        for (size_t i = 0; i < active.size(); ++i) {
            if (!active[i].matches(out))
                continue;
            if (active[i].kind == RuleHole::Kind::Var) {
                out.items[2].atom = symbolic_name(i);
                return out;
            }
            const int lanes = lanes_of(out.items[1].atom);
            hir::SExpr var;
            var.items.resize(3);
            var.items[0].is_atom = true;
            var.items[0].atom = "var";
            var.items[1].is_atom = true;
            var.items[1].atom = active[i].elem;
            var.items[2].is_atom = true;
            var.items[2].atom = symbolic_name(i);
            if (lanes == 1)
                return var;
            hir::SExpr bcast;
            bcast.items.resize(3);
            bcast.items[0].is_atom = true;
            bcast.items[0].atom = "broadcast";
            bcast.items[1].is_atom = true;
            bcast.items[1].atom = std::to_string(lanes);
            bcast.items[2] = std::move(var);
            return bcast;
        }
        return out;
    }
    if (!out.is_atom) {
        for (hir::SExpr &item : out.items)
            item = symbolized(item, active);
    }
    return out;
}

/** Exhaustive corner-lane check: reference interpreter vs the
 *  backend's evaluator over the spec's example pool. */
bool
eval_equal(const hir::ExprPtr &ref, const backend::TargetISA &isa,
           const backend::InstrHandle &impl, int envs, uint64_t seed)
{
    Spec spec = Spec::from_expr(ref);
    ExamplePool pool(spec, seed);
    auto evaluator = isa.make_evaluator();
    hir::Interpreter interp;
    for (int i = 0; i < envs; ++i) {
        // Copy the environment out: at() grows an internal vector, so
        // its references do not survive later at() calls.
        const Env env = pool.at(i);
        interp.reset(env);
        const Value &want = interp.eval(ref);
        evaluator->reset(env);
        const Value &got = evaluator->eval(impl);
        if (!(want == got))
            return false;
    }
    return true;
}

/**
 * Verify one candidate generalization. Proved by z3 where the
 * backend has a lane encoding (universal over hole values, since the
 * holes are symbolic scalars), otherwise by exhaustive evaluation.
 * Returns the proof kind ("z3"/"eval") or nullopt when refuted or
 * unverifiable.
 */
std::optional<std::string>
verify_candidate(const hir::SExpr &lhs_sym, const hir::SExpr &rhs_sym,
                 const backend::TargetISA &isa, const MineOptions &opts)
{
    hir::ExprPtr ref;
    backend::InstrHandle impl;
    try {
        ref = hir::expr_from_sexpr(lhs_sym);
        impl = isa.instr_from_sexpr(tree_text(rhs_sym));
    } catch (const UserError &) {
        return std::nullopt;
    }
    if (!ref || !impl)
        return std::nullopt;
    Spec spec = Spec::from_expr(ref);
    Z3Options zopts;
    zopts.timeout_ms = opts.z3_timeout_ms;
    const ProofOutcome proof = z3_check(ref, isa, impl, spec, zopts);
    if (proof.result == ProofResult::Proved)
        return std::string("z3");
    if (proof.result == ProofResult::Refuted)
        return std::nullopt;
    if (eval_equal(ref, isa, impl, opts.check_envs, opts.seed))
        return std::string("eval");
    return std::nullopt;
}

/** Atomic temp-file + rename write, as the persistent cache does. */
bool
atomic_write(const std::string &path, const std::string &payload)
{
    static std::atomic<uint64_t> counter{0};
    std::ostringstream tmp;
    tmp << path << ".tmp." << ::getpid() << "."
        << counter.fetch_add(1, std::memory_order_relaxed);
    const std::string tmp_path = tmp.str();
    {
        std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
        if (!os)
            return false;
        os << payload;
        os.flush();
        if (!os.good())
            return false;
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return false;
    }
    return true;
}

/** Line-oriented reader for the rule-table file; structural problems
 *  throw UserError, which load_rule_table maps to an invalid table. */
class TableReader
{
  public:
    explicit TableReader(const std::string &text)
    {
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line))
            lines_.push_back(line);
    }

    std::string
    take(const std::string &key)
    {
        RAKE_USER_CHECK(next_ < lines_.size(),
                        "truncated rule table at field: " << key);
        const std::string &line = lines_[next_++];
        RAKE_USER_CHECK(line.size() > key.size() &&
                            line.compare(0, key.size(), key) == 0 &&
                            line[key.size()] == ' ',
                        "expected '" << key << " ...', got: " << line);
        return line.substr(key.size() + 1);
    }

    void
    take_bare(const std::string &key)
    {
        RAKE_USER_CHECK(next_ < lines_.size(),
                        "truncated rule table at field: " << key);
        RAKE_USER_CHECK(lines_[next_] == key,
                        "expected '" << key
                                     << "', got: " << lines_[next_]);
        ++next_;
    }

    bool
    peek_is(const std::string &key) const
    {
        return next_ < lines_.size() &&
               lines_[next_].compare(0, key.size(), key) == 0 &&
               (lines_[next_].size() == key.size() ||
                lines_[next_][key.size()] == ' ');
    }

    void
    done() const
    {
        RAKE_USER_CHECK(next_ == lines_.size(),
                        "trailing data after rule table");
    }

  private:
    std::vector<std::string> lines_;
    size_t next_ = 0;
};

int64_t
parse_i64(const std::string &s)
{
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    RAKE_USER_CHECK(errno != ERANGE && end != s.c_str() && *end == '\0',
                    "bad integer in rule table: " << s);
    return v;
}

std::vector<std::string>
split_ws(const std::string &s)
{
    std::istringstream is(s);
    std::vector<std::string> out;
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

/** Deterministic shipping order: cheapest witness first, text as the
 *  tie-break, so a table is byte-stable across mining runs. */
bool
rule_before(const Rule &a, const Rule &b)
{
    if (a.cost.scalar != b.cost.scalar)
        return a.cost.scalar < b.cost.scalar;
    if (a.cost.total_instructions != b.cost.total_instructions)
        return a.cost.total_instructions < b.cost.total_instructions;
    if (a.cost.total_latency != b.cost.total_latency)
        return a.cost.total_latency < b.cost.total_latency;
    if (a.lhs != b.lhs)
        return a.lhs < b.lhs;
    return a.rhs < b.rhs;
}

/**
 * Structural match of a pattern against a query tree. Hole leaves —
 * (const <type> ?hN) / (var <type> ?hN) — bind the query's value
 * atom; the head and full type atom (element AND lanes) must be
 * identical, and a hole seen twice must bind the same atom.
 */
bool
match_tree(const hir::SExpr &pattern, const hir::SExpr &query,
           std::map<std::string, std::string> &bindings)
{
    if (pattern.is_atom != query.is_atom)
        return false;
    if (pattern.is_atom)
        return pattern.atom == query.atom;
    if (is_typed_leaf(pattern) && is_hole_atom(pattern.items[2].atom)) {
        if (!is_typed_leaf(query))
            return false;
        if (pattern.items[0].atom != query.items[0].atom ||
            pattern.items[1].atom != query.items[1].atom)
            return false;
        auto it = bindings.find(pattern.items[2].atom);
        if (it != bindings.end())
            return it->second == query.items[2].atom;
        bindings.emplace(pattern.items[2].atom, query.items[2].atom);
        return true;
    }
    if (pattern.items.size() != query.items.size())
        return false;
    for (size_t i = 0; i < pattern.items.size(); ++i) {
        if (!match_tree(pattern.items[i], query.items[i], bindings))
            return false;
    }
    return true;
}

/** Instantiate a template: every ?hN atom replaced by its binding.
 *  False when a hole atom has no binding (a malformed rule). */
bool
instantiate(const hir::SExpr &t,
            const std::map<std::string, std::string> &bindings,
            hir::SExpr &out)
{
    out = t;
    if (out.is_atom) {
        if (is_hole_atom(out.atom)) {
            auto it = bindings.find(out.atom);
            if (it == bindings.end())
                return false;
            out.atom = it->second;
        }
        return true;
    }
    for (size_t i = 0; i < out.items.size(); ++i) {
        if (!instantiate(t.items[i], bindings, out.items[i]))
            return false;
    }
    return true;
}

} // namespace

const std::vector<Rule> *
RuleTable::rules_for(const std::string &backend, int grammar,
                     int cost_model) const
{
    for (const Section &s : sections) {
        if (s.backend == backend && s.grammar == grammar &&
            s.cost_model == cost_model)
            return &s.rules;
    }
    return nullptr;
}

int
RuleTable::total_rules() const
{
    int n = 0;
    for (const Section &s : sections)
        n += static_cast<int>(s.rules.size());
    return n;
}

std::string
rule_table_to_text(const std::vector<RuleTable::Section> &sections)
{
    std::ostringstream os;
    os << kMagic << " " << kRulesFormatVersion << "\n";
    for (const RuleTable::Section &s : sections) {
        os << "backend " << s.backend << "\n"
           << "grammar " << s.grammar << "\n"
           << "cost-model " << s.cost_model << "\n"
           << "rules " << s.rules.size() << "\n";
        for (const Rule &r : s.rules) {
            os << "rule\n"
               << "cost " << r.cost.scalar << " "
               << r.cost.total_instructions << " "
               << r.cost.total_latency << "\n"
               << "proof " << r.proof << "\n"
               << "holes " << r.holes.size() << "\n";
            for (size_t i = 0; i < r.holes.size(); ++i) {
                os << "hole " << i << " "
                   << (r.holes[i].kind == RuleHole::Kind::Const
                           ? "const"
                           : "var")
                   << " " << r.holes[i].elem << "\n";
            }
            os << "lhs " << r.lhs << "\n"
               << "rhs " << r.rhs << "\n"
               << "end\n";
        }
        os << "end-backend\n";
    }
    os << "end\n";
    return os.str();
}

bool
write_rule_table(const std::string &path,
                 const std::vector<RuleTable::Section> &sections)
{
    return atomic_write(path, rule_table_to_text(sections));
}

RuleTable
load_rule_table(const std::string &path)
{
    RuleTable table;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return table; // missing file: empty table, not an error
    std::ostringstream buf;
    buf << is.rdbuf();
    try {
        TableReader r(buf.str());
        RAKE_USER_CHECK(parse_i64(r.take(kMagic)) == kRulesFormatVersion,
                        "rule table format version mismatch");
        while (r.peek_is("backend")) {
            RuleTable::Section section;
            section.backend = r.take("backend");
            section.grammar =
                static_cast<int>(parse_i64(r.take("grammar")));
            section.cost_model =
                static_cast<int>(parse_i64(r.take("cost-model")));
            const int64_t count = parse_i64(r.take("rules"));
            RAKE_USER_CHECK(count >= 0, "negative rule count");
            for (int64_t i = 0; i < count; ++i) {
                r.take_bare("rule");
                Rule rule;
                const auto cost = split_ws(r.take("cost"));
                RAKE_USER_CHECK(cost.size() == 3,
                                "rule cost wants 3 fields");
                rule.cost.scalar =
                    static_cast<int>(parse_i64(cost[0]));
                rule.cost.total_instructions =
                    static_cast<int>(parse_i64(cost[1]));
                rule.cost.total_latency =
                    static_cast<int>(parse_i64(cost[2]));
                rule.proof = r.take("proof");
                RAKE_USER_CHECK(rule.proof == "z3" ||
                                    rule.proof == "eval",
                                "bad rule proof: " << rule.proof);
                const int64_t holes = parse_i64(r.take("holes"));
                RAKE_USER_CHECK(holes >= 0, "negative hole count");
                for (int64_t h = 0; h < holes; ++h) {
                    const auto f = split_ws(r.take("hole"));
                    RAKE_USER_CHECK(f.size() == 3 &&
                                        parse_i64(f[0]) == h,
                                    "bad hole record");
                    RuleHole hole;
                    RAKE_USER_CHECK(f[1] == "const" || f[1] == "var",
                                    "bad hole kind: " << f[1]);
                    hole.kind = f[1] == "const" ? RuleHole::Kind::Const
                                                : RuleHole::Kind::Var;
                    hole.elem = f[2];
                    rule.holes.push_back(std::move(hole));
                }
                rule.lhs = r.take("lhs");
                rule.rhs = r.take("rhs");
                rule.lhs_tree = hir::parse_sexpr(rule.lhs);
                rule.rhs_tree = hir::parse_sexpr(rule.rhs);
                r.take_bare("end");
                section.rules.push_back(std::move(rule));
            }
            r.take_bare("end-backend");
            table.sections.push_back(std::move(section));
        }
        r.take_bare("end");
        r.done();
    } catch (const UserError &) {
        table.sections.clear();
        table.invalid = true;
    }
    return table;
}

const RuleTable *
rule_table(const std::string &path)
{
    if (path.empty())
        return nullptr;
    static std::mutex mutex;
    static auto &tables =
        *new std::map<std::string, std::unique_ptr<RuleTable>>;
    std::lock_guard<std::mutex> lock(mutex);
    auto &slot = tables[path];
    if (!slot)
        slot = std::make_unique<RuleTable>(load_rule_table(path));
    return slot.get();
}

std::string
resolve_rules_file(const std::string &requested, bool no_rules)
{
    if (no_rules)
        return "";
    if (!requested.empty())
        return requested;
    if (const char *env = std::getenv("RAKE_RULES"))
        return env;
    return "";
}

int
rule_table_size(const std::string &path, const std::string &backend,
                int grammar, int cost_model)
{
    const RuleTable *table = rule_table(path);
    if (!table)
        return 0;
    const auto *rules = table->rules_for(backend, grammar, cost_model);
    return rules ? static_cast<int>(rules->size()) : 0;
}

std::optional<backend::InstrHandle>
apply_rules(const std::vector<Rule> &rules,
            const hir::ExprPtr &normalized,
            const backend::TargetISA &isa, uint64_t seed,
            int *instance_rejects)
{
    if (rules.empty())
        return std::nullopt;
    hir::SExpr query;
    try {
        query = hir::parse_sexpr(hir::to_sexpr(normalized));
    } catch (const UserError &) {
        return std::nullopt;
    }

    struct Candidate {
        backend::Cost cost;
        size_t rule_index = 0;
        backend::InstrHandle instr;
    };
    std::vector<Candidate> candidates;
    for (size_t i = 0; i < rules.size(); ++i) {
        std::map<std::string, std::string> bindings;
        if (!match_tree(rules[i].lhs_tree, query, bindings))
            continue;
        hir::SExpr instantiated;
        if (!instantiate(rules[i].rhs_tree, bindings, instantiated))
            continue;
        backend::InstrHandle instr;
        try {
            instr = isa.instr_from_sexpr(tree_text(instantiated));
        } catch (const UserError &) {
            continue;
        }
        if (!instr)
            continue;
        candidates.push_back({isa.cost_of(instr), i, std::move(instr)});
    }
    if (candidates.empty())
        return std::nullopt;

    // Cheapest instantiation first — the same lowest-cost objective
    // CEGIS optimizes — with rule order as the deterministic
    // tie-break.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate &a, const Candidate &b) {
                         if (a.cost.better_than(b.cost))
                             return true;
                         if (b.cost.better_than(a.cost))
                             return false;
                         return a.rule_index < b.rule_index;
                     });

    // Per-instance re-check on the query's own examples: a rule was
    // proven once at mining time, but the table file is outside our
    // trust boundary, so nothing ships without the reference
    // interpreter agreeing on this very instantiation.
    Spec spec = Spec::from_expr(normalized);
    ExamplePool pool(spec, seed);
    const int envs = ExamplePool::kCornerExamples + 3;
    std::vector<Env> env_copies;
    env_copies.reserve(static_cast<size_t>(envs));
    for (int i = 0; i < envs; ++i)
        env_copies.push_back(pool.at(i));

    auto evaluator = isa.make_evaluator();
    hir::Interpreter interp;
    for (const Candidate &c : candidates) {
        bool ok = true;
        try {
            for (const Env &env : env_copies) {
                interp.reset(env);
                const Value &want = interp.eval(normalized);
                evaluator->reset(env);
                const Value &got = evaluator->eval(c.instr);
                if (!(want == got)) {
                    ok = false;
                    break;
                }
            }
        } catch (const UserError &) {
            ok = false;
        }
        if (ok)
            return c.instr;
        if (instance_rejects)
            ++*instance_rejects;
    }
    return std::nullopt;
}

RuleTable::Section
mine_rules(const backend::TargetISA &isa, int grammar, int cost_model,
           const std::vector<MinedPair> &pairs, const MineOptions &opts,
           MineStats *stats)
{
    RuleTable::Section section;
    section.backend = isa.name();
    section.grammar = grammar;
    section.cost_model = cost_model;

    MineStats local;
    MineStats &st = stats ? *stats : local;
    std::set<std::string> seen; // dedup key: lhs \n rhs

    for (const MinedPair &pair : pairs) {
        ++st.pairs;
        hir::SExpr lhs_tree, rhs_tree;
        backend::InstrHandle witness;
        try {
            lhs_tree = hir::parse_sexpr(pair.expr);
            rhs_tree = hir::parse_sexpr(pair.instr);
            witness = isa.instr_from_sexpr(pair.instr);
        } catch (const UserError &) {
            ++st.skipped;
            continue;
        }
        if (!witness) {
            ++st.skipped;
            continue;
        }

        // Candidate holes: const values / var names of the HIR side
        // that also occur in a matching typed context on the
        // instruction side. A constant that only survives as a
        // derived immediate stays concrete — the witness encoding
        // depends on its value.
        std::vector<HoleSite> active;
        for (const HoleSite &site : collect_sites(lhs_tree)) {
            if (tree_has_site(rhs_tree, site))
                active.push_back(site);
        }

        // Verify, backing off on refutation: drop constant holes one
        // by one (most-recently collected first), then the variable
        // renamings, and give up only when the fully concrete pair
        // itself is refuted — which would mean the witness is wrong.
        std::optional<std::string> proof;
        while (true) {
            proof = verify_candidate(symbolized(lhs_tree, active),
                                     symbolized(rhs_tree, active), isa,
                                     opts);
            if (proof)
                break;
            auto last_const = std::find_if(
                active.rbegin(), active.rend(), [](const HoleSite &h) {
                    return h.kind == RuleHole::Kind::Const;
                });
            if (last_const != active.rend()) {
                active.erase(std::next(last_const).base());
                continue;
            }
            if (!active.empty()) {
                active.clear();
                continue;
            }
            break;
        }
        if (!proof) {
            ++st.refuted;
            continue;
        }

        Rule rule;
        rule.lhs = tree_text(holed(lhs_tree, active));
        rule.rhs = tree_text(holed(rhs_tree, active));
        const std::string key = rule.lhs + "\n" + rule.rhs;
        if (!seen.insert(key).second) {
            ++st.duplicates;
            continue;
        }
        for (const HoleSite &site : active)
            rule.holes.push_back(RuleHole{site.kind, site.elem});
        rule.cost = isa.cost_of(witness);
        rule.proof = *proof;
        rule.lhs_tree = hir::parse_sexpr(rule.lhs);
        rule.rhs_tree = hir::parse_sexpr(rule.rhs);
        if (*proof == "z3")
            ++st.proved_z3;
        else
            ++st.proved_eval;
        section.rules.push_back(std::move(rule));
    }

    std::sort(section.rules.begin(), section.rules.end(), rule_before);
    return section;
}

} // namespace rake::synth
