#include "synth/cache.h"

namespace rake::synth {

uint64_t
options_fingerprint(const RakeOptions &opts)
{
    uint64_t h = 0xcbf29ce484222325ull;
    h = detail::cache_mix(h, static_cast<uint64_t>(opts.target.vector_bytes));
    h = detail::cache_mix(h, opts.lower.backtracking ? 1 : 0);
    h = detail::cache_mix(h, opts.lower.layouts ? 1 : 0);
    h = detail::cache_mix(h, opts.lower.lane0_pruning ? 1 : 0);
    h = detail::cache_mix(h, static_cast<uint64_t>(opts.lower.swizzle_budget));
    h = detail::cache_mix(h, static_cast<uint64_t>(opts.verifier.base_examples));
    h = detail::cache_mix(h, static_cast<uint64_t>(opts.verifier.trials));
    h = detail::cache_mix(h, opts.verifier.dedup ? 1 : 0);
    h = detail::cache_mix(h, opts.z3_prove ? 1 : 0);
    h = detail::cache_mix(h, opts.seed);
    return h;
}

SynthCache &
synthesis_cache()
{
    static SynthCache cache;
    return cache;
}

BackendSynthCache &
backend_synthesis_cache(const std::string &backend)
{
    static std::mutex registry_mutex;
    static std::unordered_map<std::string,
                              std::unique_ptr<BackendSynthCache>>
        registry;
    std::unique_lock<std::mutex> lock(registry_mutex);
    std::unique_ptr<BackendSynthCache> &slot = registry[backend];
    if (!slot)
        slot = std::make_unique<BackendSynthCache>();
    return *slot;
}

} // namespace rake::synth
