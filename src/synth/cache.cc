#include "synth/cache.h"

namespace rake::synth {

namespace {

uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h * 0x100000001b3ull;
}

} // namespace

uint64_t
options_fingerprint(const RakeOptions &opts)
{
    uint64_t h = 0xcbf29ce484222325ull;
    h = mix(h, static_cast<uint64_t>(opts.target.vector_bytes));
    h = mix(h, opts.lower.backtracking ? 1 : 0);
    h = mix(h, opts.lower.layouts ? 1 : 0);
    h = mix(h, opts.lower.lane0_pruning ? 1 : 0);
    h = mix(h, static_cast<uint64_t>(opts.lower.swizzle_budget));
    h = mix(h, static_cast<uint64_t>(opts.verifier.base_examples));
    h = mix(h, static_cast<uint64_t>(opts.verifier.trials));
    h = mix(h, opts.verifier.dedup ? 1 : 0);
    h = mix(h, opts.z3_prove ? 1 : 0);
    h = mix(h, opts.seed);
    return h;
}

SynthCache::EntryPtr
SynthCache::acquire(const hir::ExprPtr &expr, uint64_t fingerprint,
                    bool *owner)
{
    const size_t bucket = mix(expr->hash(), fingerprint);
    std::unique_lock<std::mutex> lock(mutex_);
    std::vector<EntryPtr> &slots = table_[bucket];
    for (const EntryPtr &slot : slots) {
        if (slot->fingerprint != fingerprint ||
            !hir::equal(slot->expr, expr))
            continue;
        // Copy the shared_ptr: waiting releases the mutex, and a
        // concurrent insert may reallocate the bucket vector.
        EntryPtr e = slot;
        ++stats_.hits;
        // Another thread may still be synthesizing this key; block
        // until it publishes rather than duplicating work.
        published_.wait(lock, [&e] { return e->done; });
        *owner = false;
        return e;
    }
    auto entry = std::make_shared<Entry>();
    entry->expr = expr;
    entry->fingerprint = fingerprint;
    slots.push_back(entry);
    ++stats_.misses;
    ++stats_.entries;
    *owner = true;
    return entry;
}

void
SynthCache::publish(const EntryPtr &entry,
                    std::optional<RakeResult> result)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        entry->result = std::move(result);
        entry->done = true;
    }
    published_.notify_all();
}

CacheStats
SynthCache::stats() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return stats_;
}

void
SynthCache::clear()
{
    std::unique_lock<std::mutex> lock(mutex_);
    table_.clear();
    stats_ = CacheStats{};
}

SynthCache &
synthesis_cache()
{
    static SynthCache cache;
    return cache;
}

} // namespace rake::synth
