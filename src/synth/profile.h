/**
 * @file
 * Synthesis profiler: a rollup of every stage's query counters and
 * wall-clock time over one or more Rake runs, rendered as the
 * `--profile` breakdown the bench drivers print.
 *
 * The per-stage counters already exist for Table 1; the profiler adds
 * the per-rule split of lifting, the fast-path effectiveness numbers
 * (reference-cache and dedup hit rates, swizzle memo hits), and a
 * time-share column so a regression in any one stage is visible
 * without rebuilding with gprof.
 */
#ifndef RAKE_SYNTH_PROFILE_H
#define RAKE_SYNTH_PROFILE_H

#include <string>

#include "synth/rake.h"

namespace rake::synth {

/** Accumulated profile over a set of Rake runs. */
struct SynthProfile {
    // Lifting, split by rule (the paper's update / replace / extend).
    QueryStats lift_update;
    QueryStats lift_replace;
    QueryStats lift_extend;

    // Lowering: sketch verification and swizzle search.
    QueryStats sketch;
    SwizzleStats swizzle;
    int backtracks = 0;

    int runs = 0;       ///< syntheses folded into this profile
    int cache_hits = 0; ///< runs answered by the cross-expression cache
    int disk_hits = 0;  ///< runs answered by the persistent on-disk tier
    int rule_hits = 0;  ///< runs answered by the rule-first stage
    int rule_instance_rejects = 0; ///< rule instantiations refused by
                                   ///< the per-instance example re-check
    int rule_table_size = 0; ///< rules loaded for this configuration
                             ///< (max across merges, not a sum)
    int timeouts = 0;   ///< runs aborted by the wall-clock deadline
    int degraded = 0;   ///< runs that fell back to the greedy selector

    // Whole-pipeline selection counters, folded in by the pipeline
    // compiler (not by add(): they are DAG-level, not per-synthesis).
    // All zero for single-expression runs, and rendered only when a
    // DAG was in play, so flat output stays bit-identical.
    int stages = 0;            ///< DAG stages compiled
    int boundary_swizzles = 0; ///< boundary permutes left after
                               ///< layout negotiation
    int64_t hashcons_hits = 0; ///< shared HIR subtrees deduplicated

    /** Fold one synthesis result into the profile. */
    void add(const RakeResult &r);

    /** Same, for a backend-parameterized run (no proof stage). */
    void add(const BackendRakeResult &r);

    /** Fold another profile in (drivers aggregate across benchmarks). */
    void merge(const SynthProfile &o);

    /** Sum of all stage clocks (synthesis effort, not wall time). */
    double total_seconds() const;

    int total_queries() const;
    int total_dedup_skips() const;
    int total_ref_cache_hits() const;

    /**
     * Render the breakdown: one row per stage/rule with queries,
     * accept/reject outcomes, fast-path hits and time share, then the
     * effectiveness summary lines.
     */
    std::string to_string() const;
};

} // namespace rake::synth

#endif // RAKE_SYNTH_PROFILE_H
