#include "synth/persist.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include <cerrno>
#include <fcntl.h>
#include <unistd.h>

#include "hir/printer.h"
#include "hvx/sexpr.h"
#include "support/error.h"

namespace rake::synth {

namespace fs = std::filesystem;

namespace {

constexpr const char *kMagic = "rake-cache";
constexpr const char *kEntrySuffix = ".rakecache";
constexpr const char *kHvxBackendName = "hvx";

/** FNV-1a over the key material: stable across processes, unlike
 *  hir::Expr::hash() or std::hash<std::string>. */
uint64_t
fnv1a(const std::string &s, uint64_t h = 1469598103934665603ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Hexfloat so stats seconds round-trip bit-exactly. */
std::string
fmt_double(double d)
{
    std::ostringstream os;
    os << std::hexfloat << d;
    return os.str();
}

std::string
fmt_query(const QueryStats &q)
{
    std::ostringstream os;
    os << q.queries << " " << q.accepted << " " << q.counterexamples
       << " " << q.dedup_skips << " " << q.ref_cache_hits << " "
       << fmt_double(q.seconds);
    return os.str();
}

std::string
fmt_swizzle(const SwizzleStats &s)
{
    std::ostringstream os;
    os << s.queries << " " << s.solved << " " << s.unsat << " "
       << s.memo_hits << " " << fmt_double(s.seconds);
    return os.str();
}

const char *
proof_name(ProofResult p)
{
    switch (p) {
      case ProofResult::Proved: return "proved";
      case ProofResult::Refuted: return "refuted";
      case ProofResult::Unknown: return "unknown";
    }
    return "unknown";
}

/**
 * Line-oriented entry parser. Any structural problem throws
 * UserError; load() maps that to an `invalid` verdict (miss, never a
 * crash). Truncation is caught by the mandatory "end" trailer: an
 * interrupted write that somehow survived the atomic-rename protocol
 * parses as invalid, not as a shorter entry.
 */
class EntryReader
{
  public:
    explicit EntryReader(const std::string &text)
    {
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line))
            lines_.push_back(line);
    }

    /** Consume the next line, which must start with `key `; returns
     *  the remainder of the line. */
    std::string take(const std::string &key)
    {
        RAKE_USER_CHECK(next_ < lines_.size(),
                        "truncated cache entry at field: " << key);
        const std::string &line = lines_[next_++];
        RAKE_USER_CHECK(line.size() > key.size() &&
                            line.compare(0, key.size(), key) == 0 &&
                            line[key.size()] == ' ',
                        "expected '" << key << " ...', got: " << line);
        return line.substr(key.size() + 1);
    }

    /** Like take(), but the line is exactly `key`. */
    void take_bare(const std::string &key)
    {
        RAKE_USER_CHECK(next_ < lines_.size(),
                        "truncated cache entry at field: " << key);
        RAKE_USER_CHECK(lines_[next_] == key,
                        "expected '" << key
                                     << "', got: " << lines_[next_]);
        ++next_;
    }

    bool peek_is(const std::string &key) const
    {
        return next_ < lines_.size() &&
               lines_[next_].compare(0, key.size(), key) == 0 &&
               (lines_[next_].size() == key.size() ||
                lines_[next_][key.size()] == ' ');
    }

    void done() const
    {
        RAKE_USER_CHECK(next_ == lines_.size(),
                        "trailing data after cache entry");
    }

  private:
    std::vector<std::string> lines_;
    size_t next_ = 0;
};

int64_t
parse_i64(const std::string &s)
{
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    RAKE_USER_CHECK(errno != ERANGE && end != s.c_str() && *end == '\0',
                    "bad integer in cache entry: " << s);
    return v;
}

double
parse_d(const std::string &s)
{
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    RAKE_USER_CHECK(errno != ERANGE && end != s.c_str() && *end == '\0',
                    "bad double in cache entry: " << s);
    return v;
}

std::vector<std::string>
split_ws(const std::string &s)
{
    std::istringstream is(s);
    std::vector<std::string> out;
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

QueryStats
parse_query(const std::string &s)
{
    const auto t = split_ws(s);
    RAKE_USER_CHECK(t.size() == 6, "query stats want 6 fields: " << s);
    QueryStats q;
    q.queries = static_cast<int>(parse_i64(t[0]));
    q.accepted = static_cast<int>(parse_i64(t[1]));
    q.counterexamples = static_cast<int>(parse_i64(t[2]));
    q.dedup_skips = static_cast<int>(parse_i64(t[3]));
    q.ref_cache_hits = static_cast<int>(parse_i64(t[4]));
    q.seconds = parse_d(t[5]);
    return q;
}

SwizzleStats
parse_swizzle(const std::string &s)
{
    const auto t = split_ws(s);
    RAKE_USER_CHECK(t.size() == 5, "swizzle stats want 5 fields: " << s);
    SwizzleStats w;
    w.queries = static_cast<int>(parse_i64(t[0]));
    w.solved = static_cast<int>(parse_i64(t[1]));
    w.unsat = static_cast<int>(parse_i64(t[2]));
    w.memo_hits = static_cast<int>(parse_i64(t[3]));
    w.seconds = parse_d(t[4]);
    return w;
}

ProofResult
parse_proof(const std::string &s)
{
    if (s == "proved")
        return ProofResult::Proved;
    if (s == "refuted")
        return ProofResult::Refuted;
    RAKE_USER_CHECK(s == "unknown", "bad proof outcome: " << s);
    return ProofResult::Unknown;
}

/** The fields shared by both entry flavors. */
struct EntryHeader {
    std::string backend;
    int grammar = 0;
    int cost_model = 0;
    std::string options_hex;
    std::string expr;
};

void
write_header(std::ostringstream &os, const EntryHeader &h)
{
    os << kMagic << " " << kPersistFormatVersion << "\n"
       << "backend " << h.backend << "\n"
       << "grammar " << h.grammar << "\n"
       << "cost-model " << h.cost_model << "\n"
       << "options " << h.options_hex << "\n"
       << "expr " << h.expr << "\n";
}

/**
 * Validate the header against the expected key. Format / grammar /
 * cost-model version mismatches and key mismatches (a filename-hash
 * collision) all land in the same bucket: reject the entry, let the
 * next store overwrite it.
 */
void
check_header(EntryReader &r, const EntryHeader &want)
{
    RAKE_USER_CHECK(parse_i64(r.take(kMagic)) == kPersistFormatVersion,
                    "cache entry format version mismatch");
    RAKE_USER_CHECK(r.take("backend") == want.backend,
                    "cache entry backend mismatch");
    RAKE_USER_CHECK(parse_i64(r.take("grammar")) == want.grammar,
                    "cache entry grammar version mismatch");
    RAKE_USER_CHECK(parse_i64(r.take("cost-model")) == want.cost_model,
                    "cache entry cost-model version mismatch");
    RAKE_USER_CHECK(r.take("options") == want.options_hex,
                    "cache entry options fingerprint mismatch");
    RAKE_USER_CHECK(r.take("expr") == want.expr,
                    "cache entry expression mismatch");
}

void
write_stats(std::ostringstream &os, const LiftStats &lift,
            const LowerStats &lower)
{
    os << "lift-update " << fmt_query(lift.update) << "\n"
       << "lift-replace " << fmt_query(lift.replace) << "\n"
       << "lift-extend " << fmt_query(lift.extend) << "\n"
       << "sketch " << fmt_query(lower.sketch) << "\n"
       << "swizzle " << fmt_swizzle(lower.swizzle) << "\n"
       << "backtracks " << lower.backtracks << "\n";
}

void
read_stats(EntryReader &r, LiftStats &lift, LowerStats &lower)
{
    lift.update = parse_query(r.take("lift-update"));
    lift.replace = parse_query(r.take("lift-replace"));
    lift.extend = parse_query(r.take("lift-extend"));
    lower.sketch = parse_query(r.take("sketch"));
    lower.swizzle = parse_swizzle(r.take("swizzle"));
    lower.backtracks = static_cast<int>(parse_i64(r.take("backtracks")));
}

/** True for outcomes that may land on disk: a verified Ok result or a
 *  deterministic no-solution. Timed-out / degraded runs never
 *  qualify (ISSUE: an aborted search says nothing about the key). */
template <typename Result>
bool
persistable(const std::optional<Result> &result)
{
    if (!result)
        return true; // deterministic no-solution
    return result->status == SynthStatus::Ok && !result->degraded &&
           result->instr != nullptr;
}

/** S-expressions are single-line by construction; refuse to encode
 *  anything that would break the line-oriented format. */
bool
line_safe(const std::string &s)
{
    return s.find('\n') == std::string::npos && !s.empty();
}

/**
 * Durability knob: RAKE_CACHE_FSYNC=0 skips the fsyncs below for
 * benchmarking on slow filesystems. Default on — a published entry
 * should survive power loss, not just process death.
 */
bool
fsync_enabled()
{
    const char *env = std::getenv("RAKE_CACHE_FSYNC");
    return env == nullptr || std::string(env) != "0";
}

/**
 * Crash-safe write: unique temp file in the same directory, then an
 * atomic rename over the final name. Readers either see the old
 * entry or the complete new one, never a torn write. Best-effort:
 * any I/O failure turns the store into a no-op.
 *
 * Durable, too (the regression this encodes): the temp file is
 * fsync'd before the rename — otherwise the rename can be journaled
 * ahead of the data and a power cut publishes a complete-looking
 * entry full of zeros — and the directory is fsync'd after it, or
 * the new name itself may vanish on replay. RAKE_CACHE_FSYNC=0
 * trades that durability back for speed.
 */
bool
atomic_write(const std::string &path, const std::string &payload)
{
    static std::atomic<uint64_t> counter{0};
    std::ostringstream tmp;
    tmp << path << ".tmp." << ::getpid() << "."
        << counter.fetch_add(1, std::memory_order_relaxed);
    const std::string tmp_path = tmp.str();
    const bool durable = fsync_enabled();

    const int fd = ::open(tmp_path.c_str(),
                          O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd < 0)
        return false;
    size_t off = 0;
    while (off < payload.size()) {
        const ssize_t n =
            ::write(fd, payload.data() + off, payload.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            std::error_code ec;
            fs::remove(tmp_path, ec);
            return false;
        }
        off += static_cast<size_t>(n);
    }
    if (durable && ::fsync(fd) != 0) {
        ::close(fd);
        std::error_code ec;
        fs::remove(tmp_path, ec);
        return false;
    }
    if (::close(fd) != 0) {
        std::error_code ec;
        fs::remove(tmp_path, ec);
        return false;
    }

    std::error_code ec;
    fs::rename(tmp_path, path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        return false;
    }

    if (durable) {
        // Publish the rename itself: fsync the containing directory.
        // Failure here is not unwound — the entry is already live and
        // well-formed, merely not yet guaranteed on stable storage.
        const std::string dir = fs::path(path).parent_path().string();
        const int dfd =
            ::open(dir.empty() ? "." : dir.c_str(),
                   O_RDONLY | O_DIRECTORY | O_CLOEXEC);
        if (dfd >= 0) {
            (void)::fsync(dfd);
            ::close(dfd);
        }
    }
    return true;
}

/** Slurp one entry file; nullopt when it does not exist. */
std::optional<std::string>
read_file(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    std::ostringstream os;
    os << is.rdbuf();
    if (!is.good() && !is.eof())
        return std::nullopt;
    return os.str();
}

} // namespace

PersistentStore::PersistentStore(std::string dir) : dir_(std::move(dir))
{
    RAKE_USER_CHECK(!dir_.empty(), "cache directory must be non-empty");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    RAKE_USER_CHECK(!ec, "cannot create cache directory " << dir_ << ": "
                                                          << ec.message());
    RAKE_USER_CHECK(fs::is_directory(dir_),
                    "cache path is not a directory: " << dir_);
}

std::string
PersistentStore::entry_path(const std::string &backend,
                            const hir::ExprPtr &normalized,
                            uint64_t options_fp) const
{
    // Content address over the full key. Version keys are *not* part
    // of the filename: a version bump must find the stale file so it
    // can be counted (disk_invalid) and overwritten in place.
    uint64_t h = fnv1a(backend);
    h = fnv1a(std::string(1, '\0'), h);
    h = fnv1a(hir::to_sexpr(normalized), h);
    h = fnv1a(std::string(1, '\0'), h);
    h = fnv1a(hex64(options_fp), h);
    return dir_ + "/" + hex64(h) + kEntrySuffix;
}

DiskLookup<RakeResult>
PersistentStore::load(const hir::ExprPtr &normalized, uint64_t options_fp)
{
    DiskLookup<RakeResult> out;
    const EntryHeader want{kHvxBackendName, kHvxGrammarVersion,
                           kHvxCostModelVersion, hex64(options_fp),
                           hir::to_sexpr(normalized)};
    const auto text =
        read_file(entry_path(want.backend, normalized, options_fp));
    if (!text)
        return out;
    try {
        EntryReader r(*text);
        check_header(r, want);
        const std::string status = r.take("status");
        if (status == "ok") {
            RakeResult res;
            res.instr = hvx::parse_instr(r.take("instr"));
            read_stats(r, res.lift, res.lower);
            res.proof = parse_proof(r.take("proof"));
            r.take_bare("end");
            r.done();
            out.result = std::move(res);
        } else {
            RAKE_USER_CHECK(status == "no_solution",
                            "bad cache entry status: " << status);
            r.take_bare("end");
            r.done();
        }
    } catch (const UserError &) {
        out.invalid = true;
        invalid_.fetch_add(1, std::memory_order_relaxed);
        return out;
    }
    out.hit = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return out;
}

bool
PersistentStore::store(const hir::ExprPtr &normalized, uint64_t options_fp,
                       const std::optional<RakeResult> &result)
{
    if (!persistable(result))
        return false;
    const EntryHeader header{kHvxBackendName, kHvxGrammarVersion,
                             kHvxCostModelVersion, hex64(options_fp),
                             hir::to_sexpr(normalized)};
    if (!line_safe(header.expr))
        return false;
    std::ostringstream os;
    write_header(os, header);
    if (result) {
        const std::string instr = hvx::to_sexpr(result->instr);
        if (!line_safe(instr))
            return false;
        os << "status ok\n"
           << "instr " << instr << "\n";
        write_stats(os, result->lift, result->lower);
        os << "proof " << proof_name(result->proof) << "\n";
    } else {
        os << "status no_solution\n";
    }
    os << "end\n";
    if (!atomic_write(entry_path(header.backend, normalized, options_fp),
                      os.str()))
        return false;
    writes_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

DiskLookup<BackendRakeResult>
PersistentStore::load_backend(const hir::ExprPtr &normalized,
                              uint64_t options_fp,
                              const backend::TargetISA &isa)
{
    DiskLookup<BackendRakeResult> out;
    const EntryHeader want{isa.name(), isa.grammar_version(),
                           isa.cost_model_version(), hex64(options_fp),
                           hir::to_sexpr(normalized)};
    const auto text =
        read_file(entry_path(want.backend, normalized, options_fp));
    if (!text)
        return out;
    try {
        EntryReader r(*text);
        check_header(r, want);
        const std::string status = r.take("status");
        if (status == "ok") {
            BackendRakeResult res;
            res.instr = isa.instr_from_sexpr(r.take("instr"));
            RAKE_USER_CHECK(res.instr != nullptr,
                            "backend " << want.backend
                                       << " cannot parse cache entry");
            read_stats(r, res.lift, res.lower);
            r.take_bare("end");
            r.done();
            out.result = std::move(res);
        } else {
            RAKE_USER_CHECK(status == "no_solution",
                            "bad cache entry status: " << status);
            r.take_bare("end");
            r.done();
        }
    } catch (const UserError &) {
        out.invalid = true;
        invalid_.fetch_add(1, std::memory_order_relaxed);
        return out;
    }
    out.hit = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return out;
}

bool
PersistentStore::store_backend(const hir::ExprPtr &normalized,
                               uint64_t options_fp,
                               const backend::TargetISA &isa,
                               const std::optional<BackendRakeResult> &result)
{
    if (!persistable(result))
        return false;
    const EntryHeader header{isa.name(), isa.grammar_version(),
                             isa.cost_model_version(), hex64(options_fp),
                             hir::to_sexpr(normalized)};
    if (!line_safe(header.expr))
        return false;
    std::ostringstream os;
    write_header(os, header);
    if (result) {
        const std::string instr = isa.instr_to_sexpr(result->instr);
        if (!line_safe(instr))
            return false; // backend has no serialization support
        os << "status ok\n"
           << "instr " << instr << "\n";
        write_stats(os, result->lift, result->lower);
    } else {
        os << "status no_solution\n";
    }
    os << "end\n";
    if (!atomic_write(entry_path(header.backend, normalized, options_fp),
                      os.str()))
        return false;
    writes_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

DiskCacheStats
PersistentStore::stats() const
{
    DiskCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    s.invalid = invalid_.load(std::memory_order_relaxed);
    return s;
}

PersistentStore *
persistent_store(const std::string &dir)
{
    if (dir.empty())
        return nullptr;
    static std::mutex mutex;
    static auto &stores =
        *new std::map<std::string, std::unique_ptr<PersistentStore>>;
    std::lock_guard<std::mutex> lock(mutex);
    auto &slot = stores[dir];
    if (!slot)
        slot = std::make_unique<PersistentStore>(dir);
    return slot.get();
}

std::vector<CacheEntryView>
scan_cache_dir(const std::string &dir)
{
    std::vector<CacheEntryView> out;
    if (dir.empty())
        return out;
    std::error_code ec;
    std::vector<std::string> paths;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        const fs::path &p = it->path();
        if (p.extension() == kEntrySuffix)
            paths.push_back(p.string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths) {
        const auto text = read_file(path);
        if (!text)
            continue;
        // Lenient field walk: the miner only needs the version keys
        // and the solved pair; stats and proof lines are skipped, and
        // anything structurally off means the file is not an entry.
        try {
            EntryReader r(*text);
            CacheEntryView view;
            RAKE_USER_CHECK(parse_i64(r.take(kMagic)) ==
                                kPersistFormatVersion,
                            "cache entry format version mismatch");
            view.backend = r.take("backend");
            view.grammar = static_cast<int>(parse_i64(r.take("grammar")));
            view.cost_model =
                static_cast<int>(parse_i64(r.take("cost-model")));
            r.take("options");
            view.expr = r.take("expr");
            const std::string status = r.take("status");
            if (status == "ok") {
                view.instr = r.take("instr");
            } else {
                RAKE_USER_CHECK(status == "no_solution",
                                "bad cache entry status: " << status);
            }
            out.push_back(std::move(view));
        } catch (const UserError &) {
            continue;
        }
    }
    return out;
}

std::string
resolve_cache_dir(const std::string &requested)
{
    if (!requested.empty())
        return requested;
    if (const char *env = std::getenv("RAKE_CACHE_DIR"))
        return env;
    return "";
}

} // namespace rake::synth
