/**
 * @file
 * Symbolic vectors: the abstraction behind ??load and ??swizzle
 * (paper §4).
 *
 * A sketch hole stands for "some data movement producing this vector".
 * Its meaning is an *arrangement*: for every output lane, the cell the
 * lane must hold — either a buffer element (??load), a lane of an
 * already-lowered sub-expression (??swizzle), or zero. During sketch
 * verification the hole evaluates via an oracle that reads the
 * arrangement directly (the existence semantics); during swizzle
 * synthesis the arrangement becomes the goal of a search over real
 * HVX data-movement instructions.
 */
#ifndef RAKE_SYNTH_SYMBOLIC_VECTOR_H
#define RAKE_SYNTH_SYMBOLIC_VECTOR_H

#include <string>
#include <vector>

#include "backend/instr_handle.h"
#include "base/value.h"
#include "hvx/instr.h"
#include "hvx/interp.h"

namespace rake::synth {

/**
 * Lane layout of a lowered value relative to its UIR meaning.
 *
 * HVX widening instructions implicitly deinterleave (even lanes to
 * the low register, odd to the high); narrowing packs implicitly
 * re-interleave. Lowering is parameterized over the layout of each
 * intermediate (paper §5.1) so the search can keep values
 * deinterleaved across lane-wise stretches and skip the shuffles.
 */
enum class Layout : uint8_t {
    Linear,        ///< lanes in semantic order
    Deinterleaved, ///< even lanes first, then odd lanes
};

std::string to_string(Layout l);

/** Permute a linear value into the given layout. */
Value apply_layout(const Value &linear, Layout layout);

/**
 * Permute a linear value into the given layout, writing into a
 * caller-owned scratch value (the verification hot path applies the
 * layout to the reference once per example).
 */
void apply_layout_into(const Value &linear, Layout layout, Value &out);

/** Semantic lane index stored at position i of a value in `layout`. */
int layout_source_lane(Layout layout, int lanes, int i);

/** One lane's required content. */
struct Cell {
    enum class Kind : uint8_t { Zero, Buf, Src };
    Kind kind = Kind::Zero;
    // Buf payload: a buffer element at (x + x_off, y + dy).
    int buffer = 0;
    int dy = 0;
    int x = 0;
    // Src payload: lane `lane` of hole source `source`.
    int source = 0;
    int lane = 0;

    static Cell
    zero()
    {
        return Cell{};
    }
    static Cell
    buf(int buffer, int dy, int x)
    {
        Cell c;
        c.kind = Kind::Buf;
        c.buffer = buffer;
        c.dy = dy;
        c.x = x;
        return c;
    }
    static Cell
    src(int source, int lane)
    {
        Cell c;
        c.kind = Kind::Src;
        c.source = source;
        c.lane = lane;
        return c;
    }

    bool operator==(const Cell &o) const;
    bool operator<(const Cell &o) const;
};

/** A required lane arrangement: one Cell per output lane. */
using Arrangement = std::vector<Cell>;

/** Contiguous buffer window [x0, x0 + n). */
Arrangement window_cells(int buffer, int dy, int x0, int n);

/** Identity over a source's lanes. */
Arrangement source_cells(int source, int lanes);

/** Concatenation of two arrangements. */
Arrangement concat(const Arrangement &a, const Arrangement &b);

/** Evens of a, then odds of a (the deal permutation). */
Arrangement deinterleave(const Arrangement &a);

/** Inverse of deinterleave (the shuffle permutation). */
Arrangement interleave(const Arrangement &a);

/** out[i] = a[(i + r) mod lanes] (the ror permutation). */
Arrangement rotate(const Arrangement &a, int r);

/** Is `a` a contiguous single-row buffer window? */
bool is_window(const Arrangement &a, int *buffer, int *dy, int *x0);

/** Is `a` the identity over one full source? */
bool is_source_identity(const Arrangement &a, int *source);

/**
 * A sketch hole: required type + arrangement + the lowered values
 * that Src cells reference. Sources are type-erased backend handles
 * (a backend's own InstrPtr converts implicitly); only the owning
 * backend evaluates or inspects them.
 */
struct Hole {
    VecType type;
    Arrangement cells;
    std::vector<backend::InstrHandle> sources;
};

/**
 * Oracle value of a hole: evaluate the arrangement directly under an
 * environment (this is the "symbolic vector concretization" used for
 * sketch validity, §4.1). Sources may themselves contain nested holes
 * (a ??swizzle over a sketch subtree), so source evaluation threads
 * the same oracle through. HVX-flavoured: sources must be
 * hvx::InstrPtr handles.
 */
Value arrangement_value(const Hole &hole, const Env &env,
                        const hvx::HoleOracle &oracle = nullptr);

/**
 * Backend-independent lane assembly: concretize the arrangement given
 * the already-evaluated source values (src_values[i] is the value of
 * hole.sources[i]). Backends call this from their hole_value() after
 * running their own interpreter over the sources.
 */
Value arrangement_value_from(const Hole &hole, const Env &env,
                             const std::vector<Value> &src_values);

} // namespace rake::synth

#endif // RAKE_SYNTH_SYMBOLIC_VECTOR_H
