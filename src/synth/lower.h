/**
 * @file
 * Lowering from the Uber-Instruction IR to a target ISA (paper §4-§5,
 * Algorithm 2).
 *
 * For each uber-instruction, bottom-up:
 *
 *  1. enumerate swizzle-free sketches — concrete compute intrinsics
 *     with data movement abstracted behind symbolic-vector holes —
 *     from the grammar specialized to that uber-instruction;
 *  2. verify each sketch against the uber-instruction under the CEGIS
 *     oracle (lane-0 pruning first, §4.1);
 *  3. concretize the holes via swizzle synthesis under the cost bound
 *     β (§5), tighten β, and backtrack for a cheaper implementation.
 *
 * Lowering is parameterized over the output data layout ℓ
 * (linear / deinterleaved, §5.1) so intermediate values can stay in
 * the layout widening instructions naturally produce.
 *
 * The search itself is target-independent: the instruction grammar,
 * interpreter, swizzle repertoire, and cost model come from a
 * backend::TargetISA (see backend/target_isa.h). lower_to_hvx keeps
 * the original HVX-typed API as a thin wrapper over the shared core.
 */
#ifndef RAKE_SYNTH_LOWER_H
#define RAKE_SYNTH_LOWER_H

#include <optional>

#include "backend/target_isa.h"
#include "hvx/cost.h"
#include "synth/sketch.h"
#include "synth/swizzle.h"
#include "synth/verify.h"
#include "uir/uexpr.h"

namespace rake::synth {

/** Knobs for the lowering search (ablation switches included). */
struct LowerOptions {
    bool backtracking = true;  ///< keep searching after the first impl
    bool layouts = true;       ///< parameterize over data layouts
    bool lane0_pruning = true; ///< quick lane-0 sketch rejection (§4.1)
    int swizzle_budget = 8;    ///< instruction budget per hole

    /**
     * Wall-clock budget polled between sketches and inside both
     * swizzle solvers (the backend receives it via
     * TargetISA::set_deadline). Excluded from the cache fingerprint:
     * a deadline aborts a search, it never changes its answer.
     */
    Deadline deadline;
};

/** Instrumentation for Table 1. */
struct LowerStats {
    QueryStats sketch;   ///< sketch synthesis queries
    SwizzleStats swizzle;///< swizzle synthesis queries
    int backtracks = 0;  ///< implementations improved upon
};

/** Result of lowering one lifted expression. */
struct LowerResult {
    hvx::InstrPtr instr;
    LowerStats stats;
};

/** Result of lowering through an arbitrary backend. */
struct BackendLowerResult {
    backend::InstrHandle instr;
    LowerStats stats;
};

/**
 * Lower a lifted expression through the given backend. Returns
 * nullopt when no verified implementation was found (the caller then
 * falls back to its baseline selector, as Rake falls back to
 * Halide's). The backend instance carries per-run state (swizzle
 * memo); use a fresh one per call.
 */
std::optional<BackendLowerResult>
lower_with_backend(Verifier &verifier, const uir::UExprPtr &lifted,
                   backend::TargetISA &isa,
                   const LowerOptions &opts = {});

/**
 * Lower a lifted expression to HVX. Equivalent to lower_with_backend
 * over a fresh HVX backend; kept as the HVX-typed entry point.
 */
std::optional<LowerResult> lower_to_hvx(Verifier &verifier,
                                        const uir::UExprPtr &lifted,
                                        const hvx::Target &target,
                                        const LowerOptions &opts = {});

} // namespace rake::synth

#endif // RAKE_SYNTH_LOWER_H
