/**
 * @file
 * Swizzle synthesis (paper §5): concretize each ??load / ??swizzle
 * hole into a sequence of real HVX data-movement instructions.
 *
 * The solver searches, under an instruction budget, for the cheapest
 * program in the swizzle grammar — vmem reads, vcombine, vlo/vhi,
 * vshuffvdd, vdealvdd, vror — whose output lanes realize the hole's
 * arrangement. Every candidate program tried counts as one swizzling
 * query (Table 1); the search is memoized per arrangement and
 * backtracks through the budget exactly as Algorithm 2 requires.
 */
#ifndef RAKE_SYNTH_SWIZZLE_H
#define RAKE_SYNTH_SWIZZLE_H

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hvx/cost.h"
#include "sim/machine.h"
#include "support/deadline.h"
#include "synth/symbolic_vector.h"

namespace rake::synth {

/** Instrumentation for Table 1's swizzling columns. */
struct SwizzleStats {
    int queries = 0;   ///< candidate swizzle programs examined
    int solved = 0;    ///< holes successfully concretized
    int unsat = 0;     ///< holes proven infeasible within budget
    int memo_hits = 0; ///< goals answered from the memo table
    double seconds = 0.0;
};

/** Goal-directed, budgeted search for data-movement programs. */
class SwizzleSolver
{
  public:
    SwizzleSolver(const hvx::Target &target, SwizzleStats &stats)
        : target_(target), stats_(stats)
    {
    }

    /**
     * Cheapest instruction DAG realizing the hole's arrangement with
     * total instruction count <= budget; nullptr if unsat within the
     * budget.
     */
    hvx::InstrPtr solve(const Hole &hole, int budget);

    /**
     * Wall-clock budget polled at every recursive search step; on
     * expiry the search throws TimeoutError instead of returning
     * unsat, so a timeout is never memoized as a negative result.
     */
    void set_deadline(const Deadline &deadline) { deadline_ = deadline; }

  private:
    /**
     * Memo entry for one goal. A positive result (instr + cost) and
     * the highest budget a search came up empty at are tracked in
     * separate fields: backtracking re-queries the same goal at a
     * *tighter* budget (Algorithm 2 shrinks beta), and that failure
     * must not clobber a solution already found at a looser budget —
     * later higher-budget queries still want it.
     */
    struct Result {
        hvx::InstrPtr instr;   ///< best known program (null = none yet)
        int cost = 0;          ///< its instruction count (when found)
        int failed_budget = -1;///< highest budget proven infeasible
    };

    /**
     * Memo key: the goal arrangement, its element type, and the
     * identities of the source values Src cells refer to (the same
     * arrangement over different sources is a different goal).
     */
    using Key = std::tuple<Arrangement, ScalarType,
                           std::vector<const hvx::Instr *>>;

    /**
     * Cell-wise FNV hash over the full key. Lookups used to go
     * through std::map, whose lexicographic Cell comparisons were a
     * measurable slice of synthesis time on deep swizzle searches.
     */
    struct KeyHash {
        size_t operator()(const Key &k) const;
    };

    static Key key_of(const Arrangement &arr, ScalarType elem,
                      const std::vector<hvx::InstrPtr> &sources);

    std::optional<std::pair<hvx::InstrPtr, int>>
    search(const Arrangement &arr, ScalarType elem,
           const std::vector<hvx::InstrPtr> &sources, int budget);

    /** Memoized VRead so identical loads share one node. */
    hvx::InstrPtr read(int buffer, int dy, int x0, VecType type);

    const hvx::Target &target_;
    SwizzleStats &stats_;
    Deadline deadline_;
    std::unordered_map<Key, Result, KeyHash> memo_;
    std::unordered_set<Key, KeyHash> active_;
    std::map<std::tuple<int, int, int, int, ScalarType>, hvx::InstrPtr>
        reads_;
};

/**
 * Cross-stage layout negotiation (DESIGN.md "Whole-pipeline
 * selection"): the layout in which a producer stage stores its
 * intermediate buffer. Natural stores the semantic value;
 * Interleaved/Deinterleaved store it pre-permuted by vshuffvdd /
 * vdealvdd, with every consumer's reads compensated so the pipeline's
 * final output is unchanged. Picking a non-natural layout pays one
 * permute at the producer but can cancel a permute in every consumer
 * (or vice versa) — the §7.3 cross-stage re-layout Rake alone cannot
 * see.
 */
enum class EdgeLayout : uint8_t {
    Natural,
    Interleaved,
    Deinterleaved,
};

std::string to_string(EdgeLayout layout);

/** One stage's selected program, in whole-DAG topological order. */
struct StageProgram {
    hvx::InstrPtr instr;
    int64_t iterations = 0;
    /** Buffer id read by this stage -> producing stage index. */
    std::map<int, int> producers;
};

/** Outcome of negotiate_layouts(). */
struct NegotiationResult {
    /** Transformed programs, same order as the input stages. */
    std::vector<hvx::InstrPtr> programs;
    /** Chosen layout per stage (Natural for non-producers). */
    std::vector<EdgeLayout> layouts;
    /** Permutes adjacent to stage boundaries in the final programs. */
    int boundary_swizzles = 0;
    /** Boundary permutes removed relative to all-Natural. */
    int boundary_swizzles_saved = 0;
};

/**
 * Choose one layout per producer edge minimizing total scheduled
 * cycles (the measured replacement for the old modeled boundary
 * penalty). Producers are visited in topological order and each edge's
 * three layouts are enumerated — fan-outs are tiny — keeping a
 * non-natural layout only on strict cycle improvement, so ties stay
 * Natural and the result is deterministic. A layout is only feasible
 * when every consumer read of the edge's buffer is whole-row (dx == 0)
 * and the row has an even lane count; infeasible edges stay Natural.
 * The returned boundary permutes are real instructions in the
 * returned programs, scheduled and simulated like any other.
 */
NegotiationResult negotiate_layouts(const std::vector<StageProgram> &stages,
                                    const hvx::Target &target,
                                    const sim::MachineModel &machine);

} // namespace rake::synth

#endif // RAKE_SYNTH_SWIZZLE_H
