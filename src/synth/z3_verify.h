/**
 * @file
 * SMT-backed equivalence proofs via z3 (the paper's Rosette/z3 oracle).
 *
 * Expressions from all three IRs are encoded lane-wise into 64-bit
 * bit-vector terms over symbolic buffer cells and scalar parameters.
 * Encoding is lazy per output lane, which directly implements the
 * paper's incremental lane verification (§4.1): proving lane 0 first
 * rejects most wrong candidates before the full query is ever built.
 *
 * When a query is satisfiable, the model is converted back into a
 * concrete Env so it can join the CEGIS example pool — closing the
 * full counter-example-guided loop.
 */
#ifndef RAKE_SYNTH_Z3_VERIFY_H
#define RAKE_SYNTH_Z3_VERIFY_H

#include <optional>
#include <string>
#include <vector>

#include "backend/instr_handle.h"
#include "hir/expr.h"
#include "hvx/instr.h"
#include "synth/spec.h"
#include "uir/uexpr.h"

namespace rake::backend {
class TargetISA;
} // namespace rake::backend

namespace rake::synth {

/** Controls which lanes are proven and the solver budget. */
struct Z3Options {
    /** Output lanes to prove equal; empty selects {0, 1, mid, last}. */
    std::vector<int> lanes;
    unsigned timeout_ms = 20000;
};

/** Outcome of a proof attempt. */
enum class ProofResult {
    Proved,       ///< unsat: the selected lanes are equal for all inputs
    Refuted,      ///< sat: a concrete counter-example exists
    Unknown,      ///< solver timeout / incompleteness
};

/** Result plus the counter-example when refuted. */
struct ProofOutcome {
    ProofResult result = ProofResult::Unknown;
    std::optional<Env> counterexample;
};

/** Prove an HVX implementation equal to the HIR reference. */
ProofOutcome z3_check(const hir::ExprPtr &ref, const hvx::InstrPtr &impl,
                      const Spec &spec, const Z3Options &opts = {});

/** Prove a UIR lifting equal to the HIR reference. */
ProofOutcome z3_check(const hir::ExprPtr &ref, const uir::UExprPtr &impl,
                      const Spec &spec, const Z3Options &opts = {});

/** Prove two HIR expressions equal (used by simplifier tests). */
ProofOutcome z3_check(const hir::ExprPtr &ref, const hir::ExprPtr &impl,
                      const Spec &spec, const Z3Options &opts = {});

/**
 * TargetISA-generic entry point: prove a backend's type-erased
 * implementation equal to the HIR reference. Dispatches to the
 * backend's lane encoding where one exists (today: HVX, recovered
 * through the backend's own sexpr round-trip so no handle-layout
 * assumption leaks out of the backend). Backends without an encoding
 * (NEON) return Unknown — never Refuted — so callers can cleanly
 * fall back to exhaustive evaluation, which is exactly what the
 * rule miner does (synth/rules.h).
 */
ProofOutcome z3_check(const hir::ExprPtr &ref,
                      const backend::TargetISA &isa,
                      const backend::InstrHandle &impl, const Spec &spec,
                      const Z3Options &opts = {});

} // namespace rake::synth

#endif // RAKE_SYNTH_Z3_VERIFY_H
