#include "synth/rake.h"

#include "backend/hvx_backend.h"
#include "baseline/halide_optimizer.h"
#include "hir/simplify.h"
#include "support/error.h"
#include "synth/cache.h"
#include "synth/persist.h"
#include "synth/rules.h"

namespace rake::synth {

const char *
to_string(SynthStatus status)
{
    switch (status) {
      case SynthStatus::Ok:
        return "ok";
      case SynthStatus::NoSolution:
        return "no_solution";
      case SynthStatus::TimedOut:
        return "timed_out";
      case SynthStatus::Error:
        return "error";
    }
    return "unknown";
}

namespace {

/**
 * Stage options with the query deadline folded in. The per-stage
 * deadlines stay combinable so an embedder can still bound one stage
 * tighter than the whole query.
 */
RakeOptions
with_deadline(const RakeOptions &opts)
{
    RakeOptions o = opts;
    o.verifier.deadline = o.verifier.deadline.sooner(o.deadline);
    o.lower.deadline = o.lower.deadline.sooner(o.deadline);
    return o;
}

/** The three-stage synthesis proper, uncached. */
std::optional<RakeResult>
synthesize(const hir::ExprPtr &expr, const hir::ExprPtr &normalized,
           const RakeOptions &opts)
{
    Spec spec = Spec::from_expr(normalized);
    ExamplePool pool(spec, opts.seed);
    Verifier verifier(spec, pool, opts.verifier);

    RakeResult result;

    // Stage 1: lift to the Uber-Instruction IR (Algorithm 1).
    LiftResult lifted = lift_to_uir(verifier);
    result.lifted = lifted.expr;
    result.lift = lifted.stats;
    if (!lifted.expr)
        return std::nullopt;

    // Stages 2+3: sketch synthesis and swizzle synthesis
    // (Algorithm 2).
    auto lowered = lower_to_hvx(verifier, lifted.expr, opts.target,
                                opts.lower);
    if (!lowered)
        return std::nullopt;
    result.instr = lowered->instr;
    result.lower = lowered->stats;

    // Optional final SMT proof on selected lanes (§4.1 incremental
    // verification, with the original un-simplified expression as the
    // reference).
    if (opts.z3_prove) {
        ProofOutcome outcome = z3_check(expr, result.instr, spec);
        result.proof = outcome.result;
        if (outcome.result == ProofResult::Refuted)
            return std::nullopt;
    }
    return result;
}

/** The backend-parameterized two-stage synthesis, uncached. */
std::optional<BackendRakeResult>
synthesize_for(const hir::ExprPtr &normalized, backend::TargetISA &isa,
               const RakeOptions &opts)
{
    Spec spec = Spec::from_expr(normalized);
    ExamplePool pool(spec, opts.seed);
    Verifier verifier(spec, pool, opts.verifier);

    BackendRakeResult result;

    // Stage 1: lift to the Uber-Instruction IR (Algorithm 1) — shared
    // across every target, the §6 retargeting claim.
    LiftResult lifted = lift_to_uir(verifier);
    result.lifted = lifted.expr;
    result.lift = lifted.stats;
    if (!lifted.expr)
        return std::nullopt;

    // Stages 2+3 through the backend's grammar, swizzle repertoire,
    // and cost model (Algorithm 2).
    auto lowered = lower_with_backend(verifier, lifted.expr, isa,
                                      opts.lower);
    if (!lowered)
        return std::nullopt;
    result.instr = lowered->instr;
    result.lower = lowered->stats;
    return result;
}

/**
 * Graceful degradation on timeout: the greedy baseline's program,
 * tagged TimedOut + degraded. The baseline is pattern matching, not
 * search, so it runs deadline-free — the pipeline always gets a
 * runnable implementation back within a bounded epilogue.
 */
RakeResult
degrade_to_baseline(const hir::ExprPtr &expr, const RakeOptions &opts)
{
    RakeResult result;
    result.instr = baseline::select_instructions(expr, opts.target);
    result.status = SynthStatus::TimedOut;
    result.degraded = true;
    return result;
}

/**
 * The rule-first stage of the HVX fast path: consulted after both
 * cache tiers miss, before sketch enumeration + CEGIS. A hit carries
 * zero stage statistics (no query ran) and, when the final-proof
 * knob is set, the same z3 check the synthesis path would have run.
 * Misses (including instantiations the per-instance re-check
 * rejected, counted into *rejects) fall through to synthesis.
 */
std::optional<RakeResult>
try_rules(const hir::ExprPtr &expr, const hir::ExprPtr &normalized,
          const RakeOptions &opts, int *rejects)
{
    const RuleTable *table = rule_table(opts.rules_file);
    if (!table)
        return std::nullopt;
    const auto *rules = table->rules_for(
        "hvx", kHvxGrammarVersion, kHvxCostModelVersion);
    if (!rules)
        return std::nullopt;
    auto isa = backend::make_hvx_backend(opts.target);
    auto instr =
        apply_rules(*rules, normalized, *isa, opts.seed, rejects);
    if (!instr)
        return std::nullopt;
    RakeResult result;
    result.instr = std::static_pointer_cast<const hvx::Instr>(*instr);
    result.rule_hit = true;
    if (opts.z3_prove) {
        Spec spec = Spec::from_expr(normalized);
        ProofOutcome outcome = z3_check(expr, result.instr, spec);
        result.proof = outcome.result;
        if (outcome.result == ProofResult::Refuted) {
            if (rejects)
                ++*rejects;
            return std::nullopt;
        }
    }
    return result;
}

/** The backend-parameterized rule-first stage. */
std::optional<BackendRakeResult>
try_rules_for(const hir::ExprPtr &normalized, backend::TargetISA &isa,
              const RakeOptions &opts, int *rejects)
{
    const RuleTable *table = rule_table(opts.rules_file);
    if (!table)
        return std::nullopt;
    const auto *rules = table->rules_for(
        isa.name(), isa.grammar_version(), isa.cost_model_version());
    if (!rules)
        return std::nullopt;
    auto instr = apply_rules(*rules, normalized, isa, opts.seed, rejects);
    if (!instr)
        return std::nullopt;
    BackendRakeResult result;
    result.instr = *instr;
    result.rule_hit = true;
    return result;
}

std::optional<BackendRakeResult>
degrade_to_greedy(const hir::ExprPtr &expr,
                  const backend::TargetISA &isa)
{
    auto greedy = isa.greedy_select(expr);
    if (!greedy)
        return std::nullopt;
    BackendRakeResult result;
    result.instr = std::move(*greedy);
    result.status = SynthStatus::TimedOut;
    result.degraded = true;
    return result;
}

} // namespace

std::optional<RakeResult>
select_instructions(const hir::ExprPtr &expr, const RakeOptions &raw_opts)
{
    RAKE_USER_CHECK(expr != nullptr, "null expression");
    const RakeOptions opts = with_deadline(raw_opts);

    // Normalize the input the way Halide's lowering would have.
    hir::ExprPtr normalized = hir::simplify(expr);

    // Both tiers key on the normalized expression plus the options
    // fingerprint. The disk tier is consulted even with use_cache =
    // false (the knob opts out of in-process *sharing*, not of a
    // warm directory the user pointed us at).
    SynthCache &cache = synthesis_cache();
    PersistentStore *disk = persistent_store(opts.cache_dir);
    const uint64_t fp = options_fingerprint(opts);

    if (!opts.use_cache) {
        if (disk) {
            auto loaded = disk->load(normalized, fp);
            if (loaded.invalid)
                cache.note_disk_invalid();
            if (loaded.hit) {
                cache.note_disk_hit();
                if (loaded.result)
                    loaded.result->disk_hit = true;
                return std::move(loaded.result);
            }
        }
        int rule_rejects = 0;
        if (auto hit = try_rules(expr, normalized, opts, &rule_rejects)) {
            hit->rule_rejects = rule_rejects;
            if (disk && disk->store(normalized, fp, hit))
                cache.note_disk_write();
            return hit;
        }
        std::optional<RakeResult> result;
        try {
            result = synthesize(expr, normalized, opts);
        } catch (const TimeoutError &) {
            return degrade_to_baseline(expr, opts);
        }
        cache.note_synth_run();
        if (result)
            result->rule_rejects = rule_rejects;
        if (disk && disk->store(normalized, fp, result))
            cache.note_disk_write();
        return result;
    }

    // The cache keys on the *normalized* expression: syntactically
    // different inputs that simplify to the same DAG share one entry.
    // The deadline is deliberately not part of the fingerprint — it
    // can only abort a run, never change a completed run's answer, so
    // completed results are valid under any budget.
    bool owner = false;
    SynthCache::EntryPtr entry;
    try {
        entry = cache.acquire(normalized, fp, &owner, opts.deadline);
    } catch (const TimeoutError &) {
        // Budget spent waiting on another thread's in-flight
        // synthesis of the same goal.
        return degrade_to_baseline(expr, opts);
    }
    if (!owner) {
        std::optional<RakeResult> cached = entry->result;
        if (cached)
            cached->cache_hit = true;
        return cached;
    }

    // The owner probes the disk tier before paying for CEGIS; a hit
    // is published to the in-memory tier so the rest of the process
    // shares it without touching the filesystem again.
    if (disk) {
        auto loaded = disk->load(normalized, fp);
        if (loaded.invalid)
            cache.note_disk_invalid();
        if (loaded.hit) {
            cache.note_disk_hit();
            cache.publish(entry, loaded.result);
            if (loaded.result)
                loaded.result->disk_hit = true;
            return std::move(loaded.result);
        }
    }

    // Both tiers missed: the rule-first stage answers without paying
    // for CEGIS when a mined rule matches, and publishes like any
    // other completed result.
    int rule_rejects = 0;
    if (auto hit = try_rules(expr, normalized, opts, &rule_rejects)) {
        hit->rule_rejects = rule_rejects;
        cache.publish(entry, hit);
        if (disk && disk->store(normalized, fp, hit))
            cache.note_disk_write();
        return hit;
    }

    // This thread owns the in-flight entry: synthesize and publish,
    // even when synthesis throws (publish a failure so waiters do not
    // block forever; the exception still propagates). A timeout is
    // the exception to the exception: the entry is *retracted*, never
    // published, so an aborted search cannot be mistaken for a
    // deterministic "no solution".
    std::optional<RakeResult> result;
    try {
        result = synthesize(expr, normalized, opts);
    } catch (const TimeoutError &) {
        cache.retract(entry);
        return degrade_to_baseline(expr, opts);
    } catch (...) {
        cache.publish(entry, std::nullopt);
        throw;
    }
    cache.note_synth_run();
    if (result)
        result->rule_rejects = rule_rejects;
    cache.publish(entry, result);
    // Only completed outcomes reach this line (timeouts retract and
    // return above), so the store's own persistable() gate — no
    // degraded results, no timeouts — is belt and braces here.
    if (disk && disk->store(normalized, fp, result))
        cache.note_disk_write();
    return result;
}

std::optional<BackendRakeResult>
select_instructions_for(const hir::ExprPtr &expr, backend::TargetISA &isa,
                        const RakeOptions &raw_opts)
{
    RAKE_USER_CHECK(expr != nullptr, "null expression");
    const RakeOptions opts = with_deadline(raw_opts);

    hir::ExprPtr normalized = hir::simplify(expr);

    // The disk tier keys on the backend *name* directly (persist.cc
    // hashes it with a process-stable FNV), so it takes the plain
    // options fingerprint, not the std::hash-mixed in-memory one.
    const std::string backend = isa.name();
    BackendSynthCache &cache = backend_synthesis_cache(backend);
    PersistentStore *disk = persistent_store(opts.cache_dir);
    const uint64_t disk_fp = options_fingerprint(opts);

    if (!opts.use_cache) {
        if (disk) {
            auto loaded = disk->load_backend(normalized, disk_fp, isa);
            if (loaded.invalid)
                cache.note_disk_invalid();
            if (loaded.hit) {
                cache.note_disk_hit();
                if (loaded.result)
                    loaded.result->disk_hit = true;
                return std::move(loaded.result);
            }
        }
        int rule_rejects = 0;
        if (auto hit = try_rules_for(normalized, isa, opts,
                                     &rule_rejects)) {
            hit->rule_rejects = rule_rejects;
            if (disk &&
                disk->store_backend(normalized, disk_fp, isa, hit))
                cache.note_disk_write();
            return hit;
        }
        std::optional<BackendRakeResult> result;
        try {
            result = synthesize_for(normalized, isa, opts);
        } catch (const TimeoutError &) {
            return degrade_to_greedy(expr, isa);
        }
        cache.note_synth_run();
        if (result)
            result->rule_rejects = rule_rejects;
        if (disk && disk->store_backend(normalized, disk_fp, isa, result))
            cache.note_disk_write();
        return result;
    }

    // One table per backend name; the backend name is also folded
    // into the fingerprint so a rename never aliases stale entries.
    const uint64_t fp = detail::cache_mix(
        options_fingerprint(opts), std::hash<std::string>()(backend));
    bool owner = false;
    BackendSynthCache::EntryPtr entry;
    try {
        entry = cache.acquire(normalized, fp, &owner, opts.deadline);
    } catch (const TimeoutError &) {
        return degrade_to_greedy(expr, isa);
    }
    if (!owner) {
        std::optional<BackendRakeResult> cached = entry->result;
        if (cached)
            cached->cache_hit = true;
        return cached;
    }

    if (disk) {
        auto loaded = disk->load_backend(normalized, disk_fp, isa);
        if (loaded.invalid)
            cache.note_disk_invalid();
        if (loaded.hit) {
            cache.note_disk_hit();
            cache.publish(entry, loaded.result);
            if (loaded.result)
                loaded.result->disk_hit = true;
            return std::move(loaded.result);
        }
    }

    int rule_rejects = 0;
    if (auto hit = try_rules_for(normalized, isa, opts, &rule_rejects)) {
        hit->rule_rejects = rule_rejects;
        cache.publish(entry, hit);
        if (disk && disk->store_backend(normalized, disk_fp, isa, hit))
            cache.note_disk_write();
        return hit;
    }

    std::optional<BackendRakeResult> result;
    try {
        result = synthesize_for(normalized, isa, opts);
    } catch (const TimeoutError &) {
        cache.retract(entry);
        return degrade_to_greedy(expr, isa);
    } catch (...) {
        cache.publish(entry, std::nullopt);
        throw;
    }
    cache.note_synth_run();
    if (result)
        result->rule_rejects = rule_rejects;
    cache.publish(entry, result);
    if (disk && disk->store_backend(normalized, disk_fp, isa, result))
        cache.note_disk_write();
    return result;
}

} // namespace rake::synth
