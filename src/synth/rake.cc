#include "synth/rake.h"

#include "hir/simplify.h"
#include "support/error.h"

namespace rake::synth {

std::optional<RakeResult>
select_instructions(const hir::ExprPtr &expr, const RakeOptions &opts)
{
    RAKE_USER_CHECK(expr != nullptr, "null expression");

    // Normalize the input the way Halide's lowering would have.
    hir::ExprPtr normalized = hir::simplify(expr);

    Spec spec = Spec::from_expr(normalized);
    ExamplePool pool(spec, opts.seed);
    Verifier verifier(spec, pool, opts.verifier);

    RakeResult result;

    // Stage 1: lift to the Uber-Instruction IR (Algorithm 1).
    LiftResult lifted = lift_to_uir(verifier);
    result.lifted = lifted.expr;
    result.lift = lifted.stats;
    if (!lifted.expr)
        return std::nullopt;

    // Stages 2+3: sketch synthesis and swizzle synthesis
    // (Algorithm 2).
    auto lowered = lower_to_hvx(verifier, lifted.expr, opts.target,
                                opts.lower);
    if (!lowered)
        return std::nullopt;
    result.instr = lowered->instr;
    result.lower = lowered->stats;

    // Optional final SMT proof on selected lanes (§4.1 incremental
    // verification, with the original un-simplified expression as the
    // reference).
    if (opts.z3_prove) {
        ProofOutcome outcome = z3_check(expr, result.instr, spec);
        result.proof = outcome.result;
        if (outcome.result == ProofResult::Refuted)
            return std::nullopt;
    }
    return result;
}

} // namespace rake::synth
