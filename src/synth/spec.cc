#include "synth/spec.h"

#include "support/error.h"

namespace rake::synth {

namespace {

void
collect_load_types(const hir::ExprPtr &e,
                   std::map<int, ScalarType> &elem,
                   std::map<int, int> &lanes)
{
    if (e->op() == hir::Op::Load) {
        const int b = e->load_ref().buffer;
        auto it = elem.find(b);
        if (it == elem.end()) {
            elem[b] = e->type().elem;
        } else {
            RAKE_USER_CHECK(it->second == e->type().elem,
                            "buffer " << b
                                      << " loaded at two element types");
        }
        lanes[b] = std::max(lanes[b], e->type().lanes);
    }
    for (const auto &a : e->args())
        collect_load_types(a, elem, lanes);
}

void
fill_buffer(Buffer &buf, int pattern, Rng &rng)
{
    const ScalarType t = buf.elem;
    for (size_t i = 0; i < buf.data.size(); ++i) {
        int64_t v = 0;
        switch (pattern) {
          case 0: // small distinct values: exposes lane permutations
            v = static_cast<int64_t>(i % 17) + 1;
            break;
          case 1: // type maximum everywhere: exposes overflow / sat
            v = max_value(t);
            break;
          case 2: // type minimum everywhere
            v = min_value(t);
            break;
          case 3: // alternating extremes: exposes even/odd mixups
            v = i % 2 == 0 ? max_value(t) : min_value(t);
            break;
          case 4: // ramp with sign flips
            v = (static_cast<int64_t>(i) - 7) * 3;
            break;
          default: // >= ExamplePool::kCornerExamples: seeded random
                 // over the full type range
            v = rng.range(min_value(t), max_value(t));
            break;
        }
        buf.data[i] = wrap(t, v);
    }
}

} // namespace

Spec
Spec::from_expr(const hir::ExprPtr &e)
{
    RAKE_USER_CHECK(e != nullptr, "null specification expression");
    Spec s;
    s.expr = e;
    s.loads = hir::collect_loads(e);
    s.vars = hir::collect_vars(e);
    std::map<int, int> lanes;
    collect_load_types(e, s.buffer_elem, lanes);
    return s;
}

std::map<int, BufferGeometry>
buffer_geometry(const Spec &spec)
{
    std::map<int, ScalarType> elem;
    std::map<int, int> lanes;
    collect_load_types(spec.expr, elem, lanes);

    std::map<int, BufferGeometry> geometry;
    for (const hir::LoadRef &l : spec.loads) {
        auto it = geometry.find(l.buffer);
        if (it == geometry.end()) {
            BufferGeometry g;
            g.elem = elem.at(l.buffer);
            g.min_dx = g.max_dx = l.dx;
            g.min_dy = g.max_dy = l.dy;
            g.lanes = lanes.at(l.buffer);
            geometry.emplace(l.buffer, g);
        } else {
            BufferGeometry &g = it->second;
            g.min_dx = std::min(g.min_dx, l.dx);
            g.max_dx = std::max(g.max_dx, l.dx);
            g.min_dy = std::min(g.min_dy, l.dy);
            g.max_dy = std::max(g.max_dy, l.dy);
        }
    }
    // Margin: candidates may read up to roughly one extra vector on
    // either side (sliding-window pairs, rotations).
    for (auto &[id, g] : geometry)
        g.margin = g.lanes + 8;
    return geometry;
}

Env
make_example_env(const std::map<int, BufferGeometry> &geometry,
                 const std::set<std::string> &vars, int pattern, Rng &rng)
{
    Env env;
    env.x = 0;
    env.y = 0;
    for (const auto &[id, g] : geometry) {
        Buffer buf(g.elem, g.width(), g.height(), g.x0(), g.y0());
        fill_buffer(buf, pattern, rng);
        env.buffers.emplace(id, std::move(buf));
    }
    for (const std::string &name : vars) {
        // Scalar parameters draw small mixed-sign values first, then
        // random 16-bit values (they mostly feed widening paths).
        int64_t v = 0;
        switch (pattern) {
          case 0:
            v = 1;
            break;
          case 1:
            v = -3;
            break;
          case 2:
            v = 127;
            break;
          default:
            v = rng.range(-32768, 32767);
            break;
        }
        env.scalars[name] = v;
    }
    return env;
}

ExamplePool::ExamplePool(const Spec &spec, uint64_t seed)
    : spec_(spec), rng_(seed), geometry_(buffer_geometry(spec))
{
}

const Env &
ExamplePool::at(int i)
{
    while (size() <= i)
        envs_.push_back(
            make_example_env(geometry_, spec_.vars, size(), rng_));
    return envs_[i];
}

const Env &
ExamplePool::next_trial()
{
    // Trials always draw the seeded-random pattern (>= kCornerExamples)
    // regardless of pool size, which is what at(size()) resolves to
    // once the corner prefix is exhausted.
    if (!scratch_valid_) {
        scratch_ = make_example_env(geometry_, spec_.vars,
                                    kCornerExamples, rng_);
        scratch_valid_ = true;
        return scratch_;
    }
    // Refill in place. Iteration order (ascending buffer id, then
    // ascending var name) matches make_example_env, so the rng stream
    // is consumed identically.
    for (auto &[id, buf] : scratch_.buffers)
        fill_buffer(buf, kCornerExamples, rng_);
    for (auto &[name, v] : scratch_.scalars)
        v = rng_.range(-32768, 32767);
    return scratch_;
}

void
ExamplePool::adopt_trial()
{
    RAKE_CHECK(scratch_valid_, "adopt_trial without next_trial");
    envs_.push_back(std::move(scratch_));
    scratch_ = Env{};
    scratch_valid_ = false;
}

} // namespace rake::synth
