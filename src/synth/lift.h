/**
 * @file
 * Lifting from HIR to the Uber-Instruction IR (paper §3, Algorithm 1).
 *
 * A bottom-up enumerative synthesis: each HIR node's children are
 * lifted first, then the node itself is lifted by the first of three
 * rules whose candidate verifies against the CEGIS oracle:
 *
 *  - update  — re-parameterize the top uber-instruction of a lifted
 *              child (grow a vs-mpy-add kernel, fold a shift into the
 *              weights, absorb rounding constants, toggle the
 *              saturate flag of a narrow, ...);
 *  - replace — swap the child's top uber-instruction for a different
 *              one (widen -> vs-mpy-add, shift chains -> average,
 *              ...);
 *  - extend  — append a fresh uber-instruction over the lifted
 *              children (always succeeds: every HIR op has a direct
 *              uber-instruction image).
 *
 * Candidates are generated syntactically but accepted *semantically*:
 * every candidate is equivalence-checked against the HIR node on the
 * CEGIS example pool, so the lifter discovers rewrites (redundant
 * clamps, rounding folds, saturation) that no syntactic rule spells
 * out — the paper's "semantic reasoning" improvements.
 */
#ifndef RAKE_SYNTH_LIFT_H
#define RAKE_SYNTH_LIFT_H

#include "synth/verify.h"
#include "uir/uexpr.h"

namespace rake::synth {

/** Instrumentation for Table 1. */
struct LiftStats {
    QueryStats update;
    QueryStats replace;
    QueryStats extend;

    int total_queries() const
    {
        return update.queries + replace.queries + extend.queries;
    }
    double total_seconds() const
    {
        return update.seconds + replace.seconds + extend.seconds;
    }
};

/** Outcome of lifting one expression. */
struct LiftResult {
    uir::UExprPtr expr;
    LiftStats stats;
};

/** Lift the spec's expression into the Uber-Instruction IR. */
LiftResult lift_to_uir(Verifier &verifier);

} // namespace rake::synth

#endif // RAKE_SYNTH_LIFT_H
