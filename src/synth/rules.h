/**
 * @file
 * Verified, parameterized rewrite rules mined from solved syntheses.
 *
 * The CEGIS loop re-derives the same handful of lowering shapes over
 * and over: most queries are instances of a small set of (HIR
 * fragment -> instruction DAG) rules (Daly et al., PAPERS.md). This
 * module turns the persistent cache's solved (canonical HIR sexpr,
 * instruction sexpr) pairs into such rules and answers future queries
 * from them before any sketch enumeration runs:
 *
 *  - Mining anti-unifies each solved pair: constant values and leaf
 *    variable names that occur in matching typed contexts on *both*
 *    sides generalize to typed holes (`?hN` atoms in the value slot
 *    of a `(const <type> v)` / `(var <type> n)` leaf). Types, shapes,
 *    load offsets and instruction immediates stay concrete — the
 *    encodings weave them into alignments, so generalizing them is
 *    unsound.
 *  - Every candidate rule is verified ONCE with every hole bound to a
 *    fresh symbolic scalar: by the z3 lane encoder where one exists
 *    for the backend (the proof is then universal over hole values),
 *    falling back to exhaustive corner-lane evaluation through
 *    TargetISA::make_evaluator(). A refuted candidate backs off —
 *    constant holes are dropped one by one, then variable holes — and
 *    a pair that stays refuted fully concrete is discarded. Every
 *    shipped rule is verifier-proven.
 *  - Matching a query is structural: hole atoms bind the query's
 *    const value / var name (same hole, same binding; type atoms must
 *    be identical). All matching rules are instantiated, the
 *    cheapest-cost instantiation wins, and the winner is re-checked
 *    against the reference interpreter on the query's own examples
 *    before it is trusted (a mismatch counts as an instance reject
 *    and the next candidate is tried).
 *
 * The rule-table file carries the same version-key discipline as the
 * persistent cache (synth/persist.h): per-backend sections record the
 * backend name plus its grammar and cost-model versions, so a version
 * bump self-invalidates stale rules instead of replaying selections
 * today's search would not make. A corrupt or unreadable table loads
 * as empty — rules can only ever be a fast path, never an error.
 */
#ifndef RAKE_SYNTH_RULES_H
#define RAKE_SYNTH_RULES_H

#include <optional>
#include <string>
#include <vector>

#include "backend/target_isa.h"
#include "hir/sexpr.h"

namespace rake::synth {

/** Serialization-format version of the rule-table file itself. */
inline constexpr int kRulesFormatVersion = 1;

/** One typed hole of a rule. */
struct RuleHole {
    enum class Kind {
        Const, ///< binds the value atom of a (const <type> v) leaf
        Var,   ///< binds the name atom of a (var <type> n) leaf
    };
    Kind kind = Kind::Const;
    std::string elem; ///< element type ("u16"); lanes stay concrete
                      ///< in the pattern's own type atoms
};

/** A verified parameterized rewrite rule. */
struct Rule {
    std::vector<RuleHole> holes;
    std::string lhs;    ///< HIR pattern sexpr (may contain ?hN atoms)
    std::string rhs;    ///< instruction template sexpr
    backend::Cost cost; ///< witness cost at mining time (match order)
    std::string proof;  ///< "z3" or "eval": how it was verified

    // Parsed forms, rebuilt on load (not serialized).
    hir::SExpr lhs_tree;
    hir::SExpr rhs_tree;
};

/** An immutable, versioned set of rule sections (one per backend). */
class RuleTable
{
  public:
    struct Section {
        std::string backend;
        int grammar = 0;
        int cost_model = 0;
        std::vector<Rule> rules;
    };

    std::vector<Section> sections;

    /** True when the file existed but failed to parse (stale format
     *  version, truncation, corruption). The table is then empty. */
    bool invalid = false;

    /**
     * The section matching a backend under its *current* version
     * keys, or nullptr. A grammar or cost-model bump leaves the
     * on-disk section in place but makes this lookup miss, exactly
     * like the persistent cache's header check.
     */
    const std::vector<Rule> *rules_for(const std::string &backend,
                                       int grammar,
                                       int cost_model) const;

    int total_rules() const;
};

/** Parse a rule-table file. Never throws: a missing file is an empty
 *  table, a corrupt one is empty with `invalid` set. */
RuleTable load_rule_table(const std::string &path);

/**
 * Process-wide table registry, one immutable table per path; nullptr
 * when `path` is empty (the rule stage is off). Tables are loaded
 * once and never destroyed, like the persistent-store registry.
 */
const RuleTable *rule_table(const std::string &path);

/** Serialize sections to the versioned file format. */
std::string rule_table_to_text(const std::vector<RuleTable::Section> &s);

/** Atomically write a rule table; false on I/O failure. */
bool write_rule_table(const std::string &path,
                      const std::vector<RuleTable::Section> &s);

/**
 * Resolve the rule-table knob: --no-rules forces the stage off, an
 * explicit path wins otherwise, then the RAKE_RULES environment
 * variable, then "" (off). Shared by every CLI exposing --rules.
 */
std::string resolve_rules_file(const std::string &requested,
                               bool no_rules);

/**
 * Rule count the table at `path` offers `backend` under the given
 * version keys (0 when the path is empty, the table is missing or
 * corrupt, or every section is stale) — the `rule_table_size`
 * reported by the drivers.
 */
int rule_table_size(const std::string &path, const std::string &backend,
                    int grammar, int cost_model);

/**
 * Rule-first matching for one normalized query. Every structurally
 * matching rule is instantiated and parsed through the backend; the
 * candidates are ordered cheapest-first (TargetISA::cost_of on the
 * instantiation, ties broken by rule order) and each is re-checked
 * against the reference interpreter on the query's example pool
 * (seeded with `seed`, the same examples CEGIS would verify against)
 * until one passes. Candidates that fail the re-check are counted
 * into `*instance_rejects`. Returns nullopt when nothing matches or
 * survives.
 */
std::optional<backend::InstrHandle>
apply_rules(const std::vector<Rule> &rules,
            const hir::ExprPtr &normalized,
            const backend::TargetISA &isa, uint64_t seed,
            int *instance_rejects);

/** One solved (canonical HIR sexpr, instruction sexpr) pair. */
struct MinedPair {
    std::string expr;
    std::string instr;
};

/** Miner configuration. */
struct MineOptions {
    /** Example environments for the exhaustive-evaluation fallback
     *  (the first ExamplePool::kCornerExamples are the deterministic
     *  corner patterns). */
    int check_envs = 16;

    /** Solver budget per z3 proof attempt. */
    unsigned z3_timeout_ms = 20000;

    /** Example-pool seed for the evaluation fallback. */
    uint64_t seed = 1;
};

/** Mining outcome counters (reported by rake_mine_rules). */
struct MineStats {
    int pairs = 0;       ///< input pairs considered
    int proved_z3 = 0;   ///< rules proven by the symbolic encoder
    int proved_eval = 0; ///< rules proven by exhaustive evaluation
    int refuted = 0;     ///< pairs dropped: refuted even fully concrete
    int duplicates = 0;  ///< generalized to an already-mined rule
    int skipped = 0;     ///< unparseable / unserializable pairs
};

/**
 * Anti-unify + verify solved pairs for one backend into a rule
 * section under the given version keys. Deterministic: rules come
 * out sorted by (cost, lhs, rhs), deduplicated on (lhs, rhs).
 */
RuleTable::Section
mine_rules(const backend::TargetISA &isa, int grammar, int cost_model,
           const std::vector<MinedPair> &pairs, const MineOptions &opts,
           MineStats *stats);

} // namespace rake::synth

#endif // RAKE_SYNTH_RULES_H
