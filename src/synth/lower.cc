#include "synth/lower.h"

#include <map>

#include <cstdlib>

#include "backend/hvx_backend.h"
#include "support/error.h"
#include "uir/interp.h"
#include "uir/printer.h"

namespace rake::synth {

namespace {

using uir::UExpr;
using uir::UExprPtr;

/**
 * The target-independent lowering search (Algorithm 2). All
 * ISA-specific decisions — which sketches to try, how to evaluate
 * them, how to fill their holes, what they cost — are delegated to
 * the TargetISA; this class owns the memoization, the CEGIS
 * verification protocol, and the budgeted backtracking.
 *
 * It is also the LowerDriver handed back to the backend grammar, so
 * grammar templates recurse through the shared memo.
 */
class CoreLowerer final : public backend::LowerDriver
{
  public:
    CoreLowerer(Verifier &verifier, backend::TargetISA &isa,
                const LowerOptions &opts)
        : verifier_(verifier), isa_(isa), opts_(opts),
          cand_(isa.make_evaluator())
    {
        // Hand the backend the wall-clock budget so its swizzle
        // solver polls the same deadline the sketch loop does.
        isa_.set_deadline(opts_.deadline);
    }

    std::optional<backend::InstrHandle>
    lower_root(const UExprPtr &u)
    {
        auto impl = lower(u, Layout::Linear);
        if (!impl)
            return std::nullopt;
        return impl->instr;
    }

    LowerStats &stats() { return stats_; }

    // --- LowerDriver (the grammar's recursion surface) -------------

    std::optional<backend::InstrHandle>
    lowered(const UExprPtr &u, Layout layout) override
    {
        auto impl = lower(u, layout);
        if (!impl)
            return std::nullopt;
        return impl->instr;
    }

    /**
     * Keep synthetic UIR nodes (widen wrappers, two-hop narrows)
     * alive for the lifetime of the lowering: the memo keys on node
     * addresses, so letting a wrapper die would allow its address to
     * be reused by an unrelated node.
     */
    UExprPtr
    pin(UExprPtr u) override
    {
        pinned_.push_back(u);
        return u;
    }

    bool layouts_enabled() const override { return opts_.layouts; }

  private:
    struct Impl {
        backend::InstrHandle instr;
        backend::Cost cost; ///< paper cost: max per-resource count
    };

    // ---------------------------------------------------------------
    // Algorithm 2: sketch enumeration + verification + swizzle
    // concretization with backtracking under the cost bound.
    // ---------------------------------------------------------------
    std::optional<Impl>
    lower(const UExprPtr &u, Layout layout)
    {
        opts_.deadline.check("lowering");

        const auto key = std::make_pair(u.get(), layout);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
        // Seed the memo so recursive template generation cannot loop.
        memo_[key] = std::nullopt;

        std::vector<backend::Sketch> sketches;
        isa_.candidates(u, layout, *this, sketches);

        const bool trace = std::getenv("RAKE_TRACE") != nullptr;
        std::optional<Impl> best;
        for (backend::Sketch &sk : sketches) {
            opts_.deadline.check("sketch enumeration");
            if (!sk.defined())
                continue;
            if (!verify_sketch(u, layout, sk)) {
                if (trace) {
                    fprintf(stderr, "[lower]   sketch %s: rejected\n",
                            sk.note.c_str());
                    debug_dump_mismatch(u, layout, sk);
                }
                continue;
            }

            // Swizzle concretization under the tightened bound beta.
            const int compute_cost = isa_.instruction_count(sk.root);
            if (best && compute_cost >= best->cost.total_instructions)
                continue;

            std::vector<backend::InstrHandle> solutions(
                sk.holes.size());
            bool ok = true;
            int spent = 0;
            for (size_t h = 0; h < sk.holes.size(); ++h) {
                // Each hole searches under the per-hole budget; the
                // total additionally respects the tightened bound
                // once a best implementation exists.
                auto sol = isa_.solve_hole(sk.holes[h],
                                           opts_.swizzle_budget,
                                           stats_.swizzle);
                solutions[h] = sol ? *sol : nullptr;
                if (!solutions[h]) {
                    ok = false;
                    break;
                }
                spent += isa_.instruction_count(solutions[h]);
                if (best &&
                    compute_cost + spent >
                        best->cost.total_instructions +
                            opts_.swizzle_budget) {
                    ok = false;
                    break;
                }
            }
            if (!ok) {
                if (trace)
                    fprintf(stderr,
                            "[lower]   sketch %s: swizzle unsat\n",
                            sk.note.c_str());
                continue;
            }

            backend::InstrHandle impl =
                isa_.substitute_holes(sk.root, solutions);
            // Final end-to-end check of the concretized implementation.
            if (!check_impl(u, layout, impl)) {
                if (trace)
                    fprintf(stderr,
                            "[lower]   sketch %s: final check failed\n",
                            sk.note.c_str());
                continue;
            }

            const backend::Cost cost = isa_.cost_of(impl);
            if (!best || cost.better_than(best->cost)) {
                if (best)
                    ++stats_.backtracks;
                best = Impl{impl, cost};
            }
            if (!opts_.backtracking)
                break;
        }

        memo_[key] = best;
        if (!best && std::getenv("RAKE_TRACE")) {
            fprintf(stderr, "[lower] no impl (%s, %zu sketches): %s\n",
                    to_string(layout).c_str(), sketches.size(),
                    uir::to_string(u).c_str());
        }
        return best;
    }

    /** Print the first mismatching example when tracing. */
    void
    debug_dump_mismatch(const UExprPtr &u, Layout layout,
                        const backend::Sketch &sk)
    {
        std::function<Value(int, const Env &)> oracle =
            [this, &sk, &oracle](int id, const Env &env) {
                return isa_.hole_value(sk.holes[id], env, oracle);
            };
        auto interp = isa_.make_evaluator();
        interp->set_oracle(oracle);
        for (int i = 0; i < 4; ++i) {
            const Env &env = verifier_.pool().at(i);
            const Value ref =
                apply_layout(uir::evaluate(u, env), layout);
            interp->reset(env);
            const Value cand = interp->eval(sk.root);
            if (!(ref == cand)) {
                for (int l = 0; l < ref.type.lanes; ++l) {
                    if (cand.type.lanes <= l ||
                        ref[l] != cand[l]) {
                        fprintf(stderr,
                                "[lower]     example %d lane %d: ref=%lld"
                                " cand=%lld (ref %s cand %s)\n",
                                i, l, (long long)ref[l],
                                cand.type.lanes > l
                                    ? (long long)cand[l]
                                    : -999999,
                                to_string(ref.type).c_str(),
                                to_string(cand.type).c_str());
                        return;
                    }
                }
            }
        }
        fprintf(stderr, "[lower]     (no mismatch on first examples; "
                        "killed by randomized trials)\n");
    }

    /**
     * Reference evaluator for (u, layout): the UIR meaning with the
     * output layout applied, computed in the persistent uref_ context.
     * The verifier caches its outputs per persistent example under
     * ref_key(u, layout).
     */
    EvaluatorRef
    layout_ref(const UExprPtr &u, Layout layout)
    {
        return [this, &u, layout](const Env &env) -> const Value & {
            uref_.reset(env);
            apply_layout_into(uref_.eval(u), layout, layout_scratch_);
            return layout_scratch_;
        };
    }

    static RefKey
    ref_key(const UExprPtr &u, Layout layout)
    {
        // Variants 1/2 keep lowering keys disjoint from the lifting
        // stage's variant-0 keys on the same node addresses.
        return RefKey{u.get(), 1 + static_cast<int>(layout)};
    }

    /** Sketch verification with lane-0 pruning (§4.1). */
    bool
    verify_sketch(const UExprPtr &u, Layout layout,
                  const backend::Sketch &sk)
    {
        std::function<Value(int, const Env &)> oracle =
            [this, &sk, &oracle](int id, const Env &env) {
                return isa_.hole_value(sk.holes[id], env, oracle);
            };
        // The oracle copy inside cand_ captures locals by reference;
        // it is only invoked while this frame is live, and the next
        // verification installs its own oracle.
        cand_->set_oracle(oracle);
        EvaluatorRef cand = [this, &sk](const Env &env) -> const Value & {
            cand_->reset(env);
            return cand_->eval(sk.root);
        };
        EvaluatorRef ref = layout_ref(u, layout);
        const RefKey key = ref_key(u, layout);

        if (opts_.lane0_pruning) {
            // Quick check: first output lane on two examples.
            ++stats_.sketch.queries;
            for (int i = 0; i < 2; ++i) {
                const Env &env = verifier_.pool().at(i);
                const Value &a =
                    verifier_.ref_output(key, ref, i, stats_.sketch);
                const Value &b = cand(env);
                if (!(a.type == b.type) || a[0] != b[0])
                    return false;
            }
        }
        return verifier_.check_ref(key, ref, cand, stats_.sketch,
                                   /*skip_accepted=*/true);
    }

    /** Final check of a fully concretized implementation. */
    bool
    check_impl(const UExprPtr &u, Layout layout,
               const backend::InstrHandle &impl)
    {
        cand_->set_oracle(nullptr); // concretized: no holes remain
        EvaluatorRef cand = [this,
                             &impl](const Env &env) -> const Value & {
            cand_->reset(env);
            return cand_->eval(impl);
        };
        return verifier_.check_ref(ref_key(u, layout),
                                   layout_ref(u, layout), cand,
                                   stats_.sketch,
                                   /*skip_accepted=*/true);
    }

    Verifier &verifier_;
    backend::TargetISA &isa_;
    LowerOptions opts_;
    LowerStats stats_;
    uir::Interpreter uref_; ///< reference context for verification
    std::unique_ptr<backend::Evaluator>
        cand_;             ///< candidate context for verification
    Value layout_scratch_; ///< reference-after-layout scratch
    std::map<std::pair<const UExpr *, Layout>, std::optional<Impl>>
        memo_;
    std::vector<UExprPtr> pinned_;
};

} // namespace

std::optional<BackendLowerResult>
lower_with_backend(Verifier &verifier, const uir::UExprPtr &lifted,
                   backend::TargetISA &isa, const LowerOptions &opts)
{
    CoreLowerer lowerer(verifier, isa, opts);
    auto instr = lowerer.lower_root(lifted);
    if (!instr)
        return std::nullopt;
    BackendLowerResult result;
    result.instr = *instr;
    result.stats = lowerer.stats();
    return result;
}

std::optional<LowerResult>
lower_to_hvx(Verifier &verifier, const uir::UExprPtr &lifted,
             const hvx::Target &target, const LowerOptions &opts)
{
    auto isa = backend::make_hvx_backend(target);
    auto lowered = lower_with_backend(verifier, lifted, *isa, opts);
    if (!lowered)
        return std::nullopt;
    LowerResult result;
    result.instr =
        std::static_pointer_cast<const hvx::Instr>(lowered->instr);
    result.stats = lowered->stats;
    return result;
}

} // namespace rake::synth
