/**
 * @file
 * Swizzle-free sketches (paper §4).
 *
 * A sketch is a partial HVX implementation: compute instructions are
 * concrete, data movement is abstracted behind Hole nodes whose
 * meanings are lane arrangements (symbolic vectors). SketchBuilder
 * allocates holes while a lowering template constructs the tree;
 * substitute_holes grafts the synthesized swizzle programs back in
 * once every hole is concretized.
 */
#ifndef RAKE_SYNTH_SKETCH_H
#define RAKE_SYNTH_SKETCH_H

#include <string>
#include <vector>

#include "hvx/instr.h"
#include "synth/symbolic_vector.h"

namespace rake::synth {

/** A swizzle-free sketch: instruction tree + hole table. */
struct Sketch {
    hvx::InstrPtr root;
    std::vector<Hole> holes;
    std::string note; ///< template name, for reports and debugging

    bool defined() const { return root != nullptr; }
};

/** Allocates holes while a template builds its instruction tree. */
class SketchBuilder
{
  public:
    /** New hole of `type` requiring `cells` over `sources`. */
    hvx::InstrPtr
    hole(VecType type, Arrangement cells,
         std::vector<backend::InstrHandle> sources = {})
    {
        RAKE_CHECK(static_cast<int>(cells.size()) == type.lanes,
                   "hole arrangement size mismatch: "
                       << cells.size() << " cells for "
                       << rake::to_string(type));
        const int id = static_cast<int>(holes_.size());
        holes_.push_back(Hole{type, std::move(cells),
                              std::move(sources)});
        return hvx::Instr::make_hole(id, type);
    }

    /**
     * Hole that re-lays-out an existing value: the output must hold
     * lane `perm(i)` of `value` at position i.
     */
    hvx::InstrPtr
    permute_hole(const hvx::InstrPtr &value, Arrangement cells)
    {
        const int lanes = static_cast<int>(cells.size());
        return hole(VecType(value->type().elem, lanes),
                    std::move(cells), {value});
    }

    std::vector<Hole>
    take()
    {
        return std::move(holes_);
    }

    const std::vector<Hole> &holes() const { return holes_; }

  private:
    std::vector<Hole> holes_;
};

/**
 * Replace every Hole node in `root` by its synthesized program.
 * `solutions[id]` must be non-null for every hole id present.
 */
hvx::InstrPtr substitute_holes(const hvx::InstrPtr &root,
                               const std::vector<hvx::InstrPtr> &solutions);

/** Collect the hole ids present in a sketch tree. */
std::vector<int> holes_in(const hvx::InstrPtr &root);

} // namespace rake::synth

#endif // RAKE_SYNTH_SKETCH_H
