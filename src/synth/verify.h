/**
 * @file
 * Counter-example-guided equivalence checking (the CEGIS loop of
 * paper §2.2.1).
 *
 * A candidate is first checked against a small set of persistent
 * example environments (fast rejection); survivors face a randomized
 * counter-example search over fresh inputs. Any counter-example found
 * is added to the persistent set, so the same mistake is never
 * accepted twice — exactly the inductive-synthesis loop, with the
 * SMT oracle replaced by dense concrete testing plus the optional z3
 * proof backend in synth/z3_verify.h.
 */
#ifndef RAKE_SYNTH_VERIFY_H
#define RAKE_SYNTH_VERIFY_H

#include <functional>

#include "base/value.h"
#include "synth/spec.h"

namespace rake::synth {

/** Evaluation closure over an environment. */
using Evaluator = std::function<Value(const Env &)>;

/** Counters reported per synthesis stage (Table 1). */
struct QueryStats {
    int queries = 0;        ///< equivalence queries issued
    int accepted = 0;       ///< queries that verified
    int counterexamples = 0;///< candidates killed by the random search
    double seconds = 0.0;   ///< wall-clock time spent checking
};

/** Tuning knobs for the CEGIS loop. */
struct VerifierOptions {
    int base_examples = 6; ///< corner+random examples always checked
    int trials = 40;       ///< fresh random inputs per verification
};

/** CEGIS-style equivalence checker for one spec. */
class Verifier
{
  public:
    using Options = VerifierOptions;

    Verifier(const Spec &spec, ExamplePool &pool,
             Options opts = VerifierOptions());

    /**
     * Is `cand` equivalent to the spec expression on all example and
     * randomized inputs? Counts toward `stats`.
     */
    bool equivalent(const Evaluator &cand, QueryStats &stats);

    /** Equivalence of two arbitrary evaluators over this spec's inputs. */
    bool check(const Evaluator &ref, const Evaluator &cand,
               QueryStats &stats);

    const Spec &spec() const { return spec_; }
    ExamplePool &pool() { return pool_; }

  private:
    bool matches(const Evaluator &ref, const Evaluator &cand,
                 const Env &env) const;

    const Spec &spec_;
    ExamplePool &pool_;
    Options opts_;
    Evaluator ref_;
};

} // namespace rake::synth

#endif // RAKE_SYNTH_VERIFY_H
