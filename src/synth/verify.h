/**
 * @file
 * Counter-example-guided equivalence checking (the CEGIS loop of
 * paper §2.2.1).
 *
 * A candidate is first checked against a small set of persistent
 * example environments (fast rejection); survivors face a randomized
 * counter-example search over fresh inputs. Any counter-example found
 * is added to the persistent set, so the same mistake is never
 * accepted twice — exactly the inductive-synthesis loop, with the
 * SMT oracle replaced by dense concrete testing plus the optional z3
 * proof backend in synth/z3_verify.h.
 *
 * This is the synthesizer's innermost loop, so it carries two
 * memoization layers (see DESIGN.md "The equivalence-checking fast
 * path"):
 *
 *  - Reference outputs are cached per (RefKey, persistent example
 *    index): the spec side of a query is interpreted once per
 *    example, not once per candidate.
 *  - Candidates are fingerprinted by hashing their outputs on the
 *    corner examples. A candidate that reproduces a previously
 *    rejected candidate's outputs through its failing corner is
 *    rejected without re-comparing; a candidate that reproduces a
 *    previously *verified* candidate's corner outputs may skip the
 *    randomized trials (opt-in per call site). Fingerprints only
 *    short-circuit enumeration — they never substitute for the
 *    persistent-example comparison.
 */
#ifndef RAKE_SYNTH_VERIFY_H
#define RAKE_SYNTH_VERIFY_H

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/value.h"
#include "hir/interp.h"
#include "support/deadline.h"
#include "synth/spec.h"

namespace rake::synth {

/** Evaluation closure over an environment (owning result). */
using Evaluator = std::function<Value(const Env &)>;

/**
 * Evaluation closure returning a reference into caller-owned scratch
 * storage (a reusable interpreter context). The reference only needs
 * to stay valid until the next invocation of the same closure.
 */
using EvaluatorRef = std::function<const Value &(const Env &)>;

/** Counters reported per synthesis stage (Table 1). */
struct QueryStats {
    int queries = 0;        ///< equivalence queries issued
    int accepted = 0;       ///< queries that verified
    int counterexamples = 0;///< candidates killed by the random search
    int dedup_skips = 0;    ///< queries short-circuited by fingerprints
    int ref_cache_hits = 0; ///< reference outputs served from cache
    double seconds = 0.0;   ///< wall-clock time spent checking
};

/** Tuning knobs for the CEGIS loop. */
struct VerifierOptions {
    int base_examples = 6; ///< corner+random examples always checked
    int trials = 40;       ///< fresh random inputs per verification
    bool dedup = true;     ///< observational-equivalence dedup on/off

    /**
     * Wall-clock budget polled inside every equivalence query; on
     * expiry check_ref throws TimeoutError, unwound at the
     * select_instructions boundary into SynthStatus::TimedOut.
     * Deliberately excluded from options_fingerprint(): a deadline
     * can only abort a run, never change a completed run's answer.
     */
    Deadline deadline;
};

/**
 * Identity of a reference expression across queries. The verifier
 * keys its reference-output cache and dedup fingerprint sets on this;
 * a default-constructed (null) key disables both, giving the legacy
 * uncached behavior.
 *
 * `node` is the address of the spec-side IR node; `variant`
 * distinguishes different reference semantics hung off the same node
 * (e.g. the output layout applied after evaluation in lowering). The
 * caller must keep the node alive for the verifier's lifetime — the
 * synthesis stages already pin their IR for exactly this reason.
 */
struct RefKey {
    const void *node = nullptr;
    int variant = 0;

    bool
    operator==(const RefKey &o) const
    {
        return node == o.node && variant == o.variant;
    }
};

/** CEGIS-style equivalence checker for one spec. */
class Verifier
{
  public:
    using Options = VerifierOptions;

    Verifier(const Spec &spec, ExamplePool &pool,
             Options opts = VerifierOptions());

    Verifier(const Verifier &) = delete;
    Verifier &operator=(const Verifier &) = delete;

    /**
     * Is `cand` equivalent to the spec expression on all example and
     * randomized inputs? Counts toward `stats`.
     */
    bool equivalent(const Evaluator &cand, QueryStats &stats);

    /** Equivalence of two arbitrary evaluators over this spec's inputs. */
    bool check(const Evaluator &ref, const Evaluator &cand,
               QueryStats &stats);

    /**
     * The cached-and-deduplicated equivalence check. `key` identifies
     * the reference expression (null key disables caching and dedup).
     * With `skip_accepted`, a candidate matching an already-verified
     * candidate's corner fingerprint is accepted without re-running
     * the randomized trials — sound for enumeration loops whose
     * accepted candidates all face the same persistent examples, and
     * kept off for the public equivalence predicate.
     */
    bool check_ref(const RefKey &key, const EvaluatorRef &ref,
                   const EvaluatorRef &cand, QueryStats &stats,
                   bool skip_accepted = false);

    /**
     * Reference output on persistent example `i`, served from the
     * per-key cache (filling it on miss). Used by pruning heuristics
     * that peek at examples outside a full check.
     */
    const Value &ref_output(const RefKey &key, const EvaluatorRef &ref,
                            int i, QueryStats &stats);

    /**
     * The dedup fingerprint: a hash of `cand`'s outputs on the corner
     * examples. Exposed so tests can pin that candidates differing on
     * any corner example never share a fingerprint.
     */
    uint64_t corner_fingerprint(const EvaluatorRef &cand);

    const Spec &spec() const { return spec_; }
    ExamplePool &pool() { return pool_; }
    const Options &options() const { return opts_; }

  private:
    struct RefKeyHash {
        size_t
        operator()(const RefKey &k) const
        {
            return std::hash<const void *>()(k.node) * 1000003u +
                   static_cast<size_t>(k.variant);
        }
    };

    /** Per-reference memoization and dedup state. */
    struct RefState {
        std::vector<Value> outputs; ///< per persistent example index
        std::unordered_set<uint64_t> corner_fail; ///< failing prefixes
        std::unordered_set<uint64_t> accepted;    ///< verified hashes
    };

    const Value &cached_ref(RefState &st, int i, const EvaluatorRef &ref,
                            const Env &env, QueryStats &stats);

    const Spec &spec_;
    ExamplePool &pool_;
    Options opts_;
    EvaluatorRef ref_;
    hir::Interpreter spec_interp_; ///< context behind ref_
    std::unordered_map<RefKey, RefState, RefKeyHash> refs_;
    Value ref_scratch_;  ///< uncached reference result (null key)
    Value cand_scratch_; ///< legacy Evaluator candidate result
};

} // namespace rake::synth

#endif // RAKE_SYNTH_VERIFY_H
