#include "synth/verify.h"

#include <chrono>

#include "hir/interp.h"
#include "support/error.h"

namespace rake::synth {

namespace {

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

Verifier::Verifier(const Spec &spec, ExamplePool &pool, Options opts)
    : spec_(spec), pool_(pool), opts_(opts)
{
    ref_ = [expr = spec_.expr](const Env &env) {
        return hir::evaluate(expr, env);
    };
}

bool
Verifier::matches(const Evaluator &ref, const Evaluator &cand,
                  const Env &env) const
{
    const Value expected = ref(env);
    const Value actual = cand(env);
    return expected == actual;
}

bool
Verifier::equivalent(const Evaluator &cand, QueryStats &stats)
{
    return check(ref_, cand, stats);
}

bool
Verifier::check(const Evaluator &ref, const Evaluator &cand,
                QueryStats &stats)
{
    const double t0 = now_seconds();
    ++stats.queries;

    // Phase 1: persistent examples (corner cases + accumulated
    // counter-examples). Cheap rejection for the vast majority of
    // wrong candidates.
    const int persistent = std::max(opts_.base_examples, pool_.size());
    for (int i = 0; i < persistent; ++i) {
        if (!matches(ref, cand, pool_.at(i))) {
            stats.seconds += now_seconds() - t0;
            return false;
        }
    }

    // Phase 2: randomized counter-example search over fresh inputs.
    // A discovered counter-example joins the persistent pool.
    const int start = pool_.size();
    for (int t = 0; t < opts_.trials; ++t) {
        const Env &env = pool_.at(start + t);
        if (!matches(ref, cand, env)) {
            // Keep only this new counter-example; drop the other
            // fresh environments so the persistent set stays small.
            Env ce = env;
            while (pool_.size() > start)
                pool_.pop();
            pool_.add(std::move(ce));
            ++stats.counterexamples;
            stats.seconds += now_seconds() - t0;
            return false;
        }
    }
    // Candidate survived; shrink the pool back to the persistent set.
    while (pool_.size() > start)
        pool_.pop();

    ++stats.accepted;
    stats.seconds += now_seconds() - t0;
    return true;
}

} // namespace rake::synth
