#include "synth/verify.h"

#include <chrono>

#include "support/error.h"

namespace rake::synth {

namespace {

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

// FNV-1a-style 64-bit mixing over candidate outputs. One multiply per
// lane: this runs inside the corner-example loop and must stay cheap.
constexpr uint64_t kFingerprintSeed = 1469598103934665603ull;
constexpr uint64_t kFingerprintPrime = 1099511628211ull;

inline void
mix(uint64_t &h, uint64_t x)
{
    h = (h ^ x) * kFingerprintPrime;
}

inline void
mix_value(uint64_t &h, const Value &v)
{
    mix(h, static_cast<uint64_t>(static_cast<int>(v.type.elem)));
    mix(h, static_cast<uint64_t>(v.type.lanes));
    for (int64_t lane : v.lanes)
        mix(h, static_cast<uint64_t>(lane));
}

/** Early-exit lane-by-lane comparison (no temporaries). */
inline bool
values_equal(const Value &a, const Value &b)
{
    if (!(a.type == b.type))
        return false;
    const size_t n = a.lanes.size();
    for (size_t i = 0; i < n; ++i) {
        if (a.lanes[i] != b.lanes[i])
            return false;
    }
    return true;
}

} // namespace

Verifier::Verifier(const Spec &spec, ExamplePool &pool, Options opts)
    : spec_(spec), pool_(pool), opts_(opts)
{
    ref_ = [this](const Env &env) -> const Value & {
        spec_interp_.reset(env);
        return spec_interp_.eval(spec_.expr);
    };
}

bool
Verifier::equivalent(const Evaluator &cand, QueryStats &stats)
{
    EvaluatorRef c = [&](const Env &env) -> const Value & {
        cand_scratch_ = cand(env);
        return cand_scratch_;
    };
    // No skip_accepted here: the public predicate must answer yes for
    // *every* equivalent candidate, not just the first one verified.
    return check_ref(RefKey{spec_.expr.get(), 0}, ref_, c, stats);
}

bool
Verifier::check(const Evaluator &ref, const Evaluator &cand,
                QueryStats &stats)
{
    EvaluatorRef r = [&](const Env &env) -> const Value & {
        ref_scratch_ = ref(env);
        return ref_scratch_;
    };
    EvaluatorRef c = [&](const Env &env) -> const Value & {
        cand_scratch_ = cand(env);
        return cand_scratch_;
    };
    // Null key: no reference caching, no dedup — the legacy behavior
    // arbitrary evaluator pairs get.
    return check_ref(RefKey{}, r, c, stats);
}

const Value &
Verifier::cached_ref(RefState &st, int i, const EvaluatorRef &ref,
                     const Env &env, QueryStats &stats)
{
    if (i < static_cast<int>(st.outputs.size())) {
        ++stats.ref_cache_hits;
        return st.outputs[i];
    }
    // Persistent examples are visited in index order and the pool
    // only grows, so the cache extends append-only.
    RAKE_CHECK(i == static_cast<int>(st.outputs.size()),
               "reference cache filled out of order");
    st.outputs.push_back(ref(env));
    return st.outputs.back();
}

const Value &
Verifier::ref_output(const RefKey &key, const EvaluatorRef &ref, int i,
                     QueryStats &stats)
{
    RAKE_CHECK(key.node != nullptr, "ref_output needs a non-null key");
    return cached_ref(refs_[key], i, ref, pool_.at(i), stats);
}

uint64_t
Verifier::corner_fingerprint(const EvaluatorRef &cand)
{
    const int corners =
        std::min(std::max(opts_.base_examples, pool_.size()),
                 static_cast<int>(ExamplePool::kCornerExamples));
    uint64_t h = kFingerprintSeed;
    for (int i = 0; i < corners; ++i)
        mix_value(h, cand(pool_.at(i)));
    return h;
}

bool
Verifier::check_ref(const RefKey &key, const EvaluatorRef &ref,
                    const EvaluatorRef &cand, QueryStats &stats,
                    bool skip_accepted)
{
    // The synthesizer's innermost loop doubles as the deadline's
    // finest-grained poll site: every lifting/sketch/swizzle search
    // issues queries here, so expiry surfaces within one candidate.
    opts_.deadline.check("equivalence checking");

    const double t0 = now_seconds();
    ++stats.queries;
    auto done = [&](bool result) {
        stats.seconds += now_seconds() - t0;
        return result;
    };

    RefState *st = key.node != nullptr ? &refs_[key] : nullptr;
    const bool dedup = st != nullptr && opts_.dedup;

    // Phase 1: persistent examples (corner cases + accumulated
    // counter-examples). Cheap rejection for the vast majority of
    // wrong candidates. The candidate's outputs on the corner prefix
    // are fingerprinted as a side effect of the comparison loop.
    const int persistent = std::max(opts_.base_examples, pool_.size());
    const int corners =
        std::min(persistent,
                 static_cast<int>(ExamplePool::kCornerExamples));
    uint64_t h = kFingerprintSeed;
    for (int i = 0; i < persistent; ++i) {
        const Env &env = pool_.at(i);
        const Value &actual = cand(env);
        if (dedup && i < corners) {
            mix_value(h, actual);
            if (st->corner_fail.count(h) != 0) {
                // A previous candidate produced these exact outputs
                // through this corner and was rejected here; this one
                // fails identically.
                ++stats.dedup_skips;
                return done(false);
            }
        }
        const Value &expected =
            st != nullptr ? cached_ref(*st, i, ref, env, stats)
                          : ref(env);
        if (!values_equal(expected, actual)) {
            if (dedup && i < corners)
                st->corner_fail.insert(h);
            return done(false);
        }
    }

    // A candidate observationally equal (on every corner example) to
    // one that already survived the randomized search may skip the
    // trials — enumeration-only shortcut, requested per call site.
    if (dedup && skip_accepted && st->accepted.count(h) != 0) {
        ++stats.dedup_skips;
        ++stats.accepted;
        return done(true);
    }

    // Phase 2: randomized counter-example search over fresh inputs.
    // Trials are generated into the pool's scratch environment (same
    // rng stream as growing the pool, but allocation-free); a
    // discovered counter-example is *moved* into the persistent set.
    for (int t = 0; t < opts_.trials; ++t) {
        opts_.deadline.check("randomized trials");
        const Env &env = pool_.next_trial();
        const Value &actual = cand(env);
        const Value &expected = ref(env);
        if (!values_equal(expected, actual)) {
            pool_.adopt_trial();
            ++stats.counterexamples;
            return done(false);
        }
    }

    if (dedup)
        st->accepted.insert(h);
    ++stats.accepted;
    return done(true);
}

} // namespace rake::synth
