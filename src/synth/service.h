/**
 * @file
 * SelectService: the serving facade over select_instructions_for().
 *
 * One long-running object that answers (backend, expression sexpr)
 * queries through the full selection stack — in-memory cache tier,
 * persistent disk tier, mined rewrite rules, then CEGIS — and keeps
 * the counters the compile server's `metrics` request reports:
 * per-tier hit counts, degraded/shed/timeout outcomes, cross-client
 * in-flight dedupe hits, and a fixed-bucket latency histogram
 * (support/histogram.h) for p50/p99 synthesis latency.
 *
 * Thread safety: select() may be called from any number of threads
 * concurrently (the server's ThreadPool workers); dedupe across them
 * — and hence across the clients they serve — is exactly the
 * owner/waiter protocol of the cross-expression cache, which is why a
 * warm server answers most traffic without ever re-running CEGIS.
 *
 * Tier attribution: `memory`/`disk`/`rule` come from the result's own
 * hit flags; `cegis_runs` and `inflight_dedup` are deltas of the
 * cache singletons' counters since this service was constructed (the
 * server process does no other synthesis, so the deltas are exact).
 */
#ifndef RAKE_SYNTH_SERVICE_H
#define RAKE_SYNTH_SERVICE_H

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "backend/target_isa.h"
#include "support/histogram.h"
#include "synth/cache.h"
#include "synth/rake.h"

namespace rake::synth {

/** Creates a fresh per-query TargetISA (they carry per-run state). */
using BackendFactory =
    std::function<std::unique_ptr<backend::TargetISA>()>;

/** Service configuration. */
struct ServiceConfig {
    /**
     * Options every query starts from (cache_dir, rules_file, seed,
     * verifier knobs). The per-request deadline is layered on top;
     * `deadline` here acts as a server-wide cap when set.
     */
    RakeOptions rake;

    /** Backend name -> factory. serve/server.h provides the default
     *  registry (hvx + neon). */
    std::map<std::string, BackendFactory> backends;
};

/** One selection query, as the server hands it to the service. */
struct ServiceRequest {
    std::string backend = "hvx";
    std::string expr;     ///< HIR s-expression
    Deadline deadline;    ///< armed at request *receipt*, so queue
                          ///< time counts against the budget
};

/** One selection answer. */
struct ServiceReply {
    SynthStatus status = SynthStatus::Ok;
    bool found = false;    ///< instr holds a selection
    bool degraded = false; ///< greedy fallback after a timeout
    std::string tier;      ///< memory | disk | rule | cegis | none
    std::string instr;     ///< canonical selection s-expression
    std::string error;     ///< message when status == Error
};

/** Snapshot of the service counters (the `metrics` payload). */
struct ServiceMetrics {
    int64_t requests = 0;     ///< select() calls answered
    int64_t memory_hits = 0;  ///< answered by the in-memory tier
    int64_t disk_hits = 0;    ///< answered by the persistent tier
    int64_t rule_hits = 0;    ///< answered by the rule-first stage
    int64_t cegis_runs = 0;   ///< completed CEGIS executions
    int64_t no_solution = 0;  ///< deterministic search failures
    int64_t timed_out = 0;    ///< deadline expiries (degraded answers)
    int64_t degraded = 0;     ///< greedy-fallback answers shipped
    int64_t overloaded = 0;   ///< requests shed by admission control
    int64_t errors = 0;       ///< malformed requests / backend errors
    int64_t inflight_dedup = 0; ///< hits that waited on an in-flight
                                ///< synthesis of the same goal
    int64_t latency_count = 0;  ///< samples in the histogram
    double latency_p50_us = 0;  ///< median select() latency
    double latency_p99_us = 0;  ///< tail select() latency

    /** Flat JSON object, key order fixed for grep-able CI smokes. */
    std::string to_json() const;
};

class SelectService
{
  public:
    explicit SelectService(ServiceConfig config);

    SelectService(const SelectService &) = delete;
    SelectService &operator=(const SelectService &) = delete;

    /** Answer one query (thread-safe, called by pool workers). */
    ServiceReply select(const ServiceRequest &request);

    /** Admission control shed one request before it reached select(). */
    void note_shed();

    ServiceMetrics metrics() const;

    const ServiceConfig &config() const { return config_; }

  private:
    CacheStats cache_totals() const;

    ServiceConfig config_;
    CacheStats baseline_; ///< cache counters at construction

    std::atomic<int64_t> requests_{0};
    std::atomic<int64_t> memory_hits_{0};
    std::atomic<int64_t> disk_hits_{0};
    std::atomic<int64_t> rule_hits_{0};
    std::atomic<int64_t> no_solution_{0};
    std::atomic<int64_t> timed_out_{0};
    std::atomic<int64_t> degraded_{0};
    std::atomic<int64_t> overloaded_{0};
    std::atomic<int64_t> errors_{0};
    LatencyHistogram latency_;
};

} // namespace rake::synth

#endif // RAKE_SYNTH_SERVICE_H
