#include "synth/z3_verify.h"

#include <map>
#include <tuple>

#include <z3++.h>

#include "backend/target_isa.h"
#include "base/arith.h"
#include "hvx/sexpr.h"
#include "support/error.h"

namespace rake::synth {

namespace {

/**
 * Lane-wise encoder of HIR / UIR / HVX expressions into 64-bit
 * bit-vector terms.
 *
 * Invariant: every encoded lane term is *normalized* for its element
 * type — i.e. equal to wrap(elem, value) — exactly mirroring the
 * concrete interpreters, so proofs transfer.
 */
class LaneEncoder
{
  public:
    explicit LaneEncoder(z3::context &ctx) : ctx_(ctx) {}

    /** Symbolic buffer cell (absolute element coordinates). */
    z3::expr
    cell(int buffer, int dy, int x, ScalarType elem)
    {
        auto key = std::make_tuple(buffer, dy, x);
        auto it = cells_.find(key);
        if (it != cells_.end())
            return it->second;
        const std::string name = "b" + std::to_string(buffer) + "_y" +
                                 std::to_string(dy) + "_x" +
                                 std::to_string(x);
        z3::expr raw = ctx_.bv_const(name.c_str(), bits(elem));
        z3::expr v = extend(raw, elem);
        cells_.emplace(key, v);
        cell_types_.emplace(key, elem);
        return v;
    }

    /** Symbolic scalar parameter. */
    z3::expr
    scalar(const std::string &name, ScalarType elem)
    {
        auto it = scalars_.find(name);
        if (it != scalars_.end())
            return it->second;
        z3::expr raw = ctx_.bv_const(("s_" + name).c_str(), bits(elem));
        z3::expr v = extend(raw, elem);
        scalars_.emplace(name, v);
        scalar_types_.emplace(name, elem);
        return v;
    }

    // --- lane encodings -------------------------------------------------

    z3::expr
    lane(const hir::ExprPtr &e, int i)
    {
        auto key = std::make_pair(static_cast<const void *>(e.get()), i);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
        z3::expr v = hir_lane(e, i);
        memo_.emplace(key, v);
        return v;
    }

    z3::expr
    lane(const uir::UExprPtr &e, int i)
    {
        auto key = std::make_pair(static_cast<const void *>(e.get()), i);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
        z3::expr v = uir_lane(e, i);
        memo_.emplace(key, v);
        return v;
    }

    z3::expr
    lane(const hvx::InstrPtr &e, int i)
    {
        auto key = std::make_pair(static_cast<const void *>(e.get()), i);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
        z3::expr v = hvx_lane(e, i);
        memo_.emplace(key, v);
        return v;
    }

    /** Convert a model into a concrete Env (cells + scalars). */
    Env
    model_to_env(const z3::model &m, const Spec &spec)
    {
        Env env = [&] {
            auto geo = buffer_geometry(spec);
            Rng rng(7);
            std::set<std::string> vars = spec.vars;
            return make_example_env(geo, vars, 5, rng);
        }();
        for (const auto &[key, expr] : cells_) {
            const auto [buffer, dy, x] = key;
            const ScalarType t = cell_types_.at(key);
            const int64_t v = model_value(m, expr, t);
            auto it = env.buffers.find(buffer);
            if (it == env.buffers.end())
                continue;
            Buffer &buf = it->second;
            const int ix = x - buf.x0;
            const int iy = dy - buf.y0;
            if (ix >= 0 && ix < buf.width && iy >= 0 && iy < buf.height)
                buf.data[static_cast<size_t>(iy) * buf.width + ix] =
                    wrap(t, v);
        }
        for (const auto &[name, expr] : scalars_) {
            env.scalars[name] =
                model_value(m, expr, scalar_types_.at(name));
        }
        return env;
    }

  private:
    // --- helpers --------------------------------------------------------

    z3::expr
    bv(int64_t v)
    {
        return ctx_.bv_val(v, 64);
    }

    /** Normalize a BV64 term to element type t (== arith.h wrap()). */
    z3::expr
    norm(ScalarType t, const z3::expr &v)
    {
        const int b = bits(t);
        if (b == 64)
            return v;
        z3::expr low = v.extract(b - 1, 0);
        return extend(low, t);
    }

    /** Extend a BV(bits(t)) to BV64 per the signedness of t. */
    z3::expr
    extend(const z3::expr &low, ScalarType t)
    {
        const int b = low.get_sort().bv_size();
        if (b == 64)
            return low;
        return is_signed(t) ? z3::sext(low, 64 - b)
                            : z3::zext(low, 64 - b);
    }

    z3::expr
    smin(const z3::expr &a, const z3::expr &b)
    {
        return z3::ite(z3::slt(a, b), a, b);
    }

    z3::expr
    smax(const z3::expr &a, const z3::expr &b)
    {
        return z3::ite(z3::sgt(a, b), a, b);
    }

    z3::expr
    absd(const z3::expr &a, const z3::expr &b)
    {
        return z3::ite(z3::sgt(a, b), a - b, b - a);
    }

    z3::expr
    sat(ScalarType t, const z3::expr &v)
    {
        z3::expr lo = bv(min_value(t));
        z3::expr hi = bv(max_value(t));
        return z3::ite(z3::slt(v, lo), lo,
                       z3::ite(z3::sgt(v, hi), hi, v));
    }

    /** shift_right with optional rounding (constant amount). */
    z3::expr
    shr(const z3::expr &v, int n, bool round)
    {
        if (n <= 0)
            return v;
        z3::expr x = round ? v + bv(int64_t{1} << (n - 1)) : v;
        return z3::ashr(x, bv(n));
    }

    /** Variable-amount shifts, matching the interpreter helpers. */
    z3::expr
    shl_wrap(ScalarType t, const z3::expr &v, const z3::expr &n)
    {
        return norm(t, z3::shl(v, n));
    }

    z3::expr
    lshr_typed(ScalarType t, const z3::expr &v, const z3::expr &n)
    {
        // Mask to the type width first (values of unsigned types are
        // already non-negative after normalization; signed values
        // need the mask).
        const int b = bits(t);
        z3::expr masked =
            b == 64 ? v
                    : (v & bv(static_cast<int64_t>(
                          (~uint64_t{0}) >> (64 - b))));
        return norm(t, z3::lshr(masked, n));
    }

    int64_t
    model_value(const z3::model &m, const z3::expr &e, ScalarType t)
    {
        z3::expr v = m.eval(e, true);
        int64_t out = 0;
        if (v.is_numeral_i64(out))
            return wrap(t, out);
        // Fall back through uint64 for large unsigned numerals.
        uint64_t u = 0;
        if (v.is_numeral_u64(u))
            return wrap(t, static_cast<int64_t>(u));
        return 0;
    }

    // --- HIR --------------------------------------------------------

    z3::expr
    hir_lane(const hir::ExprPtr &e, int i)
    {
        using hir::Op;
        const ScalarType s = e->type().elem;
        switch (e->op()) {
          case Op::Load: {
            const hir::LoadRef &r = e->load_ref();
            return cell(r.buffer, r.dy, r.dx + i, s);
          }
          case Op::Const:
            return bv(e->const_value());
          case Op::Var:
            return scalar(e->var_name(), s);
          case Op::Broadcast:
            return lane(e->arg(0), 0);
          case Op::Cast:
            return norm(s, lane(e->arg(0), i));
          case Op::Not:
            return norm(s, ~lane(e->arg(0), i));
          case Op::Select:
            return z3::ite(lane(e->arg(0), i) != bv(0),
                           lane(e->arg(1), i), lane(e->arg(2), i));
          default:
            break;
        }
        z3::expr a = lane(e->arg(0), i);
        z3::expr b = lane(e->arg(1), i);
        switch (e->op()) {
          case Op::Add:
            return norm(s, a + b);
          case Op::Sub:
            return norm(s, a - b);
          case Op::Mul:
            return norm(s, a * b);
          case Op::Min:
            return smin(a, b);
          case Op::Max:
            return smax(a, b);
          case Op::AbsDiff:
            return norm(s, absd(a, b));
          case Op::ShiftLeft:
            return shl_wrap(s, a, b);
          case Op::ShiftRight:
            return is_signed(s) ? norm(s, z3::ashr(a, b))
                                : lshr_typed(s, a, b);
          case Op::And:
            return norm(s, a & b);
          case Op::Or:
            return norm(s, a | b);
          case Op::Xor:
            return norm(s, a ^ b);
          case Op::Lt:
            return z3::ite(z3::slt(a, b), bv(1), bv(0));
          case Op::Le:
            return z3::ite(z3::sle(a, b), bv(1), bv(0));
          case Op::Eq:
            return z3::ite(a == b, bv(1), bv(0));
          default:
            RAKE_UNREACHABLE("unhandled HIR op in z3 encoder");
        }
    }

    // --- UIR --------------------------------------------------------

    z3::expr
    uir_lane(const uir::UExprPtr &e, int i)
    {
        using uir::UOp;
        const ScalarType s = e->type().elem;
        const uir::UParams &p = e->params();
        switch (e->op()) {
          case UOp::HirLeaf:
            return lane(e->leaf(), i);
          case UOp::Widen:
            return norm(s, lane(e->arg(0), i));
          case UOp::Narrow: {
            z3::expr x = shr(lane(e->arg(0), i), p.shift, p.round);
            return p.saturate ? sat(s, x) : norm(s, x);
          }
          case UOp::VsMpyAdd: {
            z3::expr acc = bv(0);
            for (int k = 0; k < e->num_args(); ++k)
                acc = acc + lane(e->arg(k), i) * bv(p.kernel[k]);
            return p.saturate ? sat(s, acc) : norm(s, acc);
          }
          case UOp::VvMpyAdd: {
            z3::expr acc = bv(0);
            for (int k = 0; k + 1 < e->num_args(); k += 2)
                acc = acc + lane(e->arg(k), i) * lane(e->arg(k + 1), i);
            return p.saturate ? sat(s, acc) : norm(s, acc);
          }
          case UOp::AbsDiff:
            return norm(s, absd(lane(e->arg(0), i), lane(e->arg(1), i)));
          case UOp::Min:
            return smin(lane(e->arg(0), i), lane(e->arg(1), i));
          case UOp::Max:
            return smax(lane(e->arg(0), i), lane(e->arg(1), i));
          case UOp::Average:
            return norm(s, z3::ashr(lane(e->arg(0), i) +
                                        lane(e->arg(1), i) +
                                        bv(p.round ? 1 : 0),
                                    bv(1)));
          case UOp::ShiftLeft:
            return shl_wrap(s, lane(e->arg(0), i), lane(e->arg(1), i));
          case UOp::ShiftRight: {
            z3::expr a = lane(e->arg(0), i);
            z3::expr n = lane(e->arg(1), i);
            if (p.round) {
                // (a + (1 << (n-1))) >> n, arithmetically.
                z3::expr rnd =
                    z3::ite(n == bv(0), a,
                            a + z3::shl(bv(1), n - bv(1)));
                return norm(s, z3::ashr(rnd, n));
            }
            return is_signed(s) ? norm(s, z3::ashr(a, n))
                                : lshr_typed(s, a, n);
          }
          case UOp::And:
            return norm(s, lane(e->arg(0), i) & lane(e->arg(1), i));
          case UOp::Or:
            return norm(s, lane(e->arg(0), i) | lane(e->arg(1), i));
          case UOp::Xor:
            return norm(s, lane(e->arg(0), i) ^ lane(e->arg(1), i));
          case UOp::Not:
            return norm(s, ~lane(e->arg(0), i));
          case UOp::Lt:
            return z3::ite(z3::slt(lane(e->arg(0), i),
                                   lane(e->arg(1), i)),
                           bv(1), bv(0));
          case UOp::Le:
            return z3::ite(z3::sle(lane(e->arg(0), i),
                                   lane(e->arg(1), i)),
                           bv(1), bv(0));
          case UOp::Eq:
            return z3::ite(lane(e->arg(0), i) == lane(e->arg(1), i),
                           bv(1), bv(0));
          case UOp::Select:
            return z3::ite(lane(e->arg(0), i) != bv(0),
                           lane(e->arg(1), i), lane(e->arg(2), i));
        }
        RAKE_UNREACHABLE("unhandled UIR op in z3 encoder");
    }

    // --- HVX --------------------------------------------------------

    z3::expr
    hvx_lane(const hvx::InstrPtr &e, int i)
    {
        using hvx::Opcode;
        const ScalarType s = e->type().elem;
        const int L = e->type().lanes;
        const std::vector<int64_t> &im = e->imms();

        // Lane-index helpers mirroring hvx/interp.cc exactly.
        auto deint = [&](int j) {
            if (L % 2 != 0)
                return j;
            const int h = L / 2;
            return j < h ? 2 * j : 2 * (j - h) + 1;
        };
        auto cat = [&](int j) {
            const int l0 = e->arg(0)->type().lanes;
            return j < l0 ? lane(e->arg(0), j)
                          : lane(e->arg(1), j - l0);
        };
        auto ileave = [&](int j) {
            return j % 2 == 0 ? lane(e->arg(0), j / 2)
                              : lane(e->arg(1), j / 2);
        };

        switch (e->op()) {
          case Opcode::VRead: {
            const hir::LoadRef &r = e->load_ref();
            return cell(r.buffer, r.dy, r.dx + i, s);
          }
          case Opcode::VSplat:
            return lane(e->splat_value(), 0);
          case Opcode::VBitcast: {
            // Reassemble the output lane from the bytes of the input
            // lanes (little-endian), mirroring hvx::bitcast.
            const ScalarType in_t = e->arg(0)->type().elem;
            const int in_b = bits(in_t);
            const int out_b = bits(s);
            z3::expr_vector parts(ctx_);
            // Collect out_b bits starting at global bit i*out_b,
            // most-significant first for z3::concat.
            for (int byte = out_b / 8 - 1; byte >= 0; --byte) {
                const int gbit = i * out_b + byte * 8;
                const int in_lane = gbit / in_b;
                const int in_off = gbit % in_b;
                z3::expr src = lane(e->arg(0), in_lane);
                parts.push_back(src.extract(in_off + 7, in_off));
            }
            z3::expr low = z3::concat(parts);
            return extend(low, s);
          }
          case Opcode::VCombine:
            return cat(i);
          case Opcode::VLo:
            return lane(e->arg(0), i);
          case Opcode::VHi:
            return lane(e->arg(0), L + i);
          case Opcode::VAlign: {
            const int j = i + static_cast<int>(im[0]);
            return j < L ? lane(e->arg(0), j) : lane(e->arg(1), j - L);
          }
          case Opcode::VRor:
            return lane(e->arg(0), (i + static_cast<int>(im[0])) % L);
          case Opcode::VShuffVdd: {
            const int h = L / 2;
            return i % 2 == 0 ? lane(e->arg(0), i / 2)
                              : lane(e->arg(0), h + i / 2);
          }
          case Opcode::VDealVdd: {
            const int h = L / 2;
            return i < h ? lane(e->arg(0), 2 * i)
                         : lane(e->arg(0), 2 * (i - h) + 1);
          }
          case Opcode::VMux:
            return z3::ite(lane(e->arg(0), i) != bv(0),
                           lane(e->arg(1), i), lane(e->arg(2), i));
          case Opcode::VPackE:
            return norm(s, ileave(i));
          case Opcode::VPackO: {
            const ScalarType in_t = e->arg(0)->type().elem;
            const int half = bits(in_t) / 2;
            return norm(s, lshr_typed(in_t, ileave(i), bv(half)));
          }
          case Opcode::VSat:
          case Opcode::VPackSat:
            return sat(s, ileave(i));
          case Opcode::VZxt:
          case Opcode::VSxt:
            return norm(s, lane(e->arg(0), deint(i)));
          case Opcode::VAdd:
            return norm(s, lane(e->arg(0), i) + lane(e->arg(1), i));
          case Opcode::VAddSat:
            return sat(s, lane(e->arg(0), i) + lane(e->arg(1), i));
          case Opcode::VSub:
            return norm(s, lane(e->arg(0), i) - lane(e->arg(1), i));
          case Opcode::VSubSat:
            return sat(s, lane(e->arg(0), i) - lane(e->arg(1), i));
          case Opcode::VAvg:
            return norm(s, z3::ashr(lane(e->arg(0), i) +
                                        lane(e->arg(1), i),
                                    bv(1)));
          case Opcode::VAvgRnd:
            return norm(s, z3::ashr(lane(e->arg(0), i) +
                                        lane(e->arg(1), i) + bv(1),
                                    bv(1)));
          case Opcode::VNavg:
            return norm(s, z3::ashr(lane(e->arg(0), i) -
                                        lane(e->arg(1), i),
                                    bv(1)));
          case Opcode::VAbsDiff:
            return norm(s, absd(lane(e->arg(0), i), lane(e->arg(1), i)));
          case Opcode::VMax:
            return smax(lane(e->arg(0), i), lane(e->arg(1), i));
          case Opcode::VMin:
            return smin(lane(e->arg(0), i), lane(e->arg(1), i));
          case Opcode::VAnd:
            return norm(s, lane(e->arg(0), i) & lane(e->arg(1), i));
          case Opcode::VOr:
            return norm(s, lane(e->arg(0), i) | lane(e->arg(1), i));
          case Opcode::VXor:
            return norm(s, lane(e->arg(0), i) ^ lane(e->arg(1), i));
          case Opcode::VNot:
            return norm(s, ~lane(e->arg(0), i));
          case Opcode::VCmpGt:
            return z3::ite(z3::sgt(lane(e->arg(0), i),
                                   lane(e->arg(1), i)),
                           bv(1), bv(0));
          case Opcode::VCmpEq:
            return z3::ite(lane(e->arg(0), i) == lane(e->arg(1), i),
                           bv(1), bv(0));
          case Opcode::VAsl:
            return shl_wrap(s, lane(e->arg(0), i),
                            bv(static_cast<int>(im[0])));
          case Opcode::VAsr:
            return norm(s, shr(lane(e->arg(0), i),
                               static_cast<int>(im[0]), false));
          case Opcode::VAsrRnd:
            return norm(s, shr(lane(e->arg(0), i),
                               static_cast<int>(im[0]), true));
          case Opcode::VLsr:
            return lshr_typed(s, lane(e->arg(0), i),
                              bv(static_cast<int>(im[0])));
          case Opcode::VAsrNarrow:
            return norm(s,
                        shr(ileave(i), static_cast<int>(im[0]), false));
          case Opcode::VAsrNarrowSat:
            return sat(s,
                       shr(ileave(i), static_cast<int>(im[0]), false));
          case Opcode::VAsrNarrowRndSat:
            return sat(s, shr(ileave(i), static_cast<int>(im[0]), true));
          case Opcode::VRoundSat: {
            const int half = bits(e->arg(0)->type().elem) / 2;
            return sat(s, shr(ileave(i), half, true));
          }
          case Opcode::VMpy:
            return norm(s, lane(e->arg(0), deint(i)) *
                               lane(e->arg(1), deint(i)));
          case Opcode::VMpyAcc:
            return norm(s, lane(e->arg(0), i) +
                               lane(e->arg(1), deint(i)) *
                                   lane(e->arg(2), deint(i)));
          case Opcode::VMpyi:
            return norm(s, lane(e->arg(0), i) * lane(e->arg(1), i));
          case Opcode::VMpyiAcc:
            return norm(s, lane(e->arg(0), i) +
                               lane(e->arg(1), i) * lane(e->arg(2), i));
          case Opcode::VMpa:
            return norm(s, lane(e->arg(0), deint(i)) * bv(im[0]) +
                               lane(e->arg(1), deint(i)) * bv(im[1]));
          case Opcode::VMpaAcc:
            return norm(s, lane(e->arg(0), i) +
                               lane(e->arg(1), deint(i)) * bv(im[0]) +
                               lane(e->arg(2), deint(i)) * bv(im[1]));
          case Opcode::VDmpy: {
            const int j = deint(i);
            return norm(s, cat(j) * bv(im[0]) + cat(j + 1) * bv(im[1]));
          }
          case Opcode::VDmpyAcc: {
            const int l1 = e->arg(1)->type().lanes;
            auto c = [&](int k) {
                return k < l1 ? lane(e->arg(1), k)
                              : lane(e->arg(2), k - l1);
            };
            const int j = deint(i);
            return norm(s, lane(e->arg(0), i) + c(j) * bv(im[0]) +
                               c(j + 1) * bv(im[1]));
          }
          case Opcode::VTmpy: {
            const int j = deint(i);
            return norm(s, cat(j) * bv(im[0]) + cat(j + 1) * bv(im[1]) +
                               cat(j + 2));
          }
          case Opcode::VTmpyAcc: {
            const int l1 = e->arg(1)->type().lanes;
            auto c = [&](int k) {
                return k < l1 ? lane(e->arg(1), k)
                              : lane(e->arg(2), k - l1);
            };
            const int j = deint(i);
            return norm(s, lane(e->arg(0), i) + c(j) * bv(im[0]) +
                               c(j + 1) * bv(im[1]) + c(j + 2));
          }
          case Opcode::VRmpy: {
            const int j = deint(i);
            z3::expr acc = bv(0);
            for (int k = 0; k < 4; ++k)
                acc = acc + cat(j + k) * bv(im[k]);
            return norm(s, acc);
          }
          case Opcode::VRmpyAcc: {
            const int l1 = e->arg(1)->type().lanes;
            auto c = [&](int k) {
                return k < l1 ? lane(e->arg(1), k)
                              : lane(e->arg(2), k - l1);
            };
            const int j = deint(i);
            z3::expr acc = lane(e->arg(0), i);
            for (int k = 0; k < 4; ++k)
                acc = acc + c(j + k) * bv(im[k]);
            return norm(s, acc);
          }
          case Opcode::VDotRmpy: {
            z3::expr acc = bv(0);
            for (int k = 0; k < 4; ++k)
                acc = acc + lane(e->arg(0), 4 * i + k) *
                                lane(e->arg(1), 4 * i + k);
            return norm(s, acc);
          }
          case Opcode::VDotRmpyAcc: {
            z3::expr acc = lane(e->arg(0), i);
            for (int k = 0; k < 4; ++k)
                acc = acc + lane(e->arg(1), 4 * i + k) *
                                lane(e->arg(2), 4 * i + k);
            return norm(s, acc);
          }
          case Opcode::VMpyIE:
            return norm(s, lane(e->arg(0), i) * lane(e->arg(1), 2 * i));
          case Opcode::VMpyIO:
            return norm(s, lane(e->arg(0), i) *
                               lane(e->arg(1), 2 * i + 1));
          case Opcode::Hole:
            RAKE_UNREACHABLE("sketch hole reached the z3 encoder");
        }
        RAKE_UNREACHABLE("unhandled HVX opcode in z3 encoder");
    }

    z3::context &ctx_;
    std::map<std::tuple<int, int, int>, z3::expr> cells_;
    std::map<std::tuple<int, int, int>, ScalarType> cell_types_;
    std::map<std::string, z3::expr> scalars_;
    std::map<std::string, ScalarType> scalar_types_;
    std::map<std::pair<const void *, int>, z3::expr> memo_;
};

std::vector<int>
select_lanes(const Z3Options &opts, int lanes)
{
    if (!opts.lanes.empty())
        return opts.lanes;
    std::vector<int> out = {0};
    if (lanes > 1)
        out.push_back(1);
    if (lanes > 4)
        out.push_back(lanes / 2);
    if (lanes > 2)
        out.push_back(lanes - 1);
    return out;
}

template <typename ImplPtr>
ProofOutcome
run_check(const hir::ExprPtr &ref, const ImplPtr &impl, const Spec &spec,
          const Z3Options &opts, int out_lanes)
{
    z3::context ctx;
    z3::solver solver(ctx);
    z3::params params(ctx);
    params.set("timeout", opts.timeout_ms);
    solver.set(params);

    LaneEncoder enc(ctx);
    z3::expr_vector diffs(ctx);
    for (int i : select_lanes(opts, out_lanes)) {
        RAKE_USER_CHECK(i >= 0 && i < out_lanes,
                        "lane " << i << " out of range");
        diffs.push_back(enc.lane(ref, i) != enc.lane(impl, i));
    }
    solver.add(z3::mk_or(diffs));

    ProofOutcome outcome;
    switch (solver.check()) {
      case z3::unsat:
        outcome.result = ProofResult::Proved;
        break;
      case z3::sat:
        outcome.result = ProofResult::Refuted;
        outcome.counterexample = enc.model_to_env(solver.get_model(),
                                                  spec);
        break;
      default:
        outcome.result = ProofResult::Unknown;
        break;
    }
    return outcome;
}

} // namespace

ProofOutcome
z3_check(const hir::ExprPtr &ref, const hvx::InstrPtr &impl,
         const Spec &spec, const Z3Options &opts)
{
    RAKE_USER_CHECK(ref->type().lanes == impl->type().lanes,
                    "lane count mismatch in z3_check");
    return run_check(ref, impl, spec, opts, ref->type().lanes);
}

ProofOutcome
z3_check(const hir::ExprPtr &ref, const uir::UExprPtr &impl,
         const Spec &spec, const Z3Options &opts)
{
    RAKE_USER_CHECK(ref->type().lanes == impl->type().lanes,
                    "lane count mismatch in z3_check");
    return run_check(ref, impl, spec, opts, ref->type().lanes);
}

ProofOutcome
z3_check(const hir::ExprPtr &ref, const hir::ExprPtr &impl,
         const Spec &spec, const Z3Options &opts)
{
    RAKE_USER_CHECK(ref->type().lanes == impl->type().lanes,
                    "lane count mismatch in z3_check");
    return run_check(ref, impl, spec, opts, ref->type().lanes);
}

ProofOutcome
z3_check(const hir::ExprPtr &ref, const backend::TargetISA &isa,
         const backend::InstrHandle &impl, const Spec &spec,
         const Z3Options &opts)
{
    RAKE_USER_CHECK(impl != nullptr, "null implementation in z3_check");
    if (isa.name() == "hvx") {
        // Recover the concrete DAG through the backend's own sexpr
        // round-trip instead of assuming the handle's layout; the
        // instruction set is tiny next to solver time, so the extra
        // parse is noise.
        const std::string text = isa.instr_to_sexpr(impl);
        if (!text.empty())
            return z3_check(ref, hvx::parse_instr(text), spec, opts);
    }
    // No lane encoding for this backend: Unknown, never Refuted, so
    // callers fall back to exhaustive evaluation.
    return {};
}

} // namespace rake::synth
