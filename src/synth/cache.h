/**
 * @file
 * Cross-expression synthesis cache.
 *
 * Rake's compile time is dominated by per-expression synthesis
 * (paper Table 1), and real pipelines repeat subexpressions — the
 * shared conv subtrees of the benchmark suite, or the same kernel
 * compiled under several benchmarks. The cache maps the structural
 * hash of the (simplified) HIR expression plus a fingerprint of every
 * option that can influence synthesis to the full RakeResult, so each
 * distinct (expression, options) pair is synthesized exactly once per
 * process.
 *
 * Concurrency: the table is guarded by one mutex. A lookup that
 * misses installs an *in-flight* entry; concurrent lookups of the
 * same key block on a condition variable until the owner publishes,
 * so a goal is never synthesized twice even when the parallel driver
 * races identical expressions. Because synthesis is deterministic
 * (seeded RNG, ordered search), the published result — including its
 * per-stage statistics — is identical no matter which thread won,
 * which keeps benchmark statistics bit-identical across job counts.
 */
#ifndef RAKE_SYNTH_CACHE_H
#define RAKE_SYNTH_CACHE_H

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "synth/rake.h"

namespace rake::synth {

/** Cache effectiveness counters (monotonic per process). */
struct CacheStats {
    int64_t hits = 0;    ///< lookups answered from the table
    int64_t misses = 0;  ///< lookups that had to synthesize
    int64_t entries = 0; ///< distinct keys currently stored
};

/** Everything beyond the expression that can change a Rake run. */
uint64_t options_fingerprint(const RakeOptions &opts);

class SynthCache
{
  public:
    /**
     * One cache slot. `done` flips exactly once, under the cache
     * mutex; `result` is nullopt while in flight and also when the
     * owning synthesis failed (failures are cached: they are as
     * deterministic as successes).
     */
    struct Entry {
        hir::ExprPtr expr;  ///< key expression (deep-compared)
        uint64_t fingerprint = 0;
        bool done = false;
        std::optional<RakeResult> result;
    };
    using EntryPtr = std::shared_ptr<Entry>;

    /**
     * Look up (expr, fingerprint). On a hit, blocks until the entry
     * is published if another thread is still synthesizing it, then
     * returns it with *owner = false. On a miss, installs an
     * in-flight entry and returns it with *owner = true: the caller
     * MUST publish() it exactly once (publishing a failure is fine),
     * or every later lookup of the key deadlocks.
     */
    EntryPtr acquire(const hir::ExprPtr &expr, uint64_t fingerprint,
                     bool *owner);

    /** Publish the owner's outcome and wake all waiters. */
    void publish(const EntryPtr &entry,
                 std::optional<RakeResult> result);

    CacheStats stats() const;

    /** Drop every entry and zero the counters (tests, benchmarks). */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::condition_variable published_;
    std::unordered_map<size_t, std::vector<EntryPtr>> table_;
    CacheStats stats_;
};

/** The process-wide cache select_instructions() consults. */
SynthCache &synthesis_cache();

} // namespace rake::synth

#endif // RAKE_SYNTH_CACHE_H
