/**
 * @file
 * Cross-expression synthesis cache.
 *
 * Rake's compile time is dominated by per-expression synthesis
 * (paper Table 1), and real pipelines repeat subexpressions — the
 * shared conv subtrees of the benchmark suite, or the same kernel
 * compiled under several benchmarks. The cache maps the structural
 * hash of the (simplified) HIR expression plus a fingerprint of every
 * option that can influence synthesis to the full result, so each
 * distinct (expression, options) pair is synthesized exactly once per
 * process.
 *
 * Concurrency: the table is guarded by one mutex. A lookup that
 * misses installs an *in-flight* entry; concurrent lookups of the
 * same key block on a condition variable until the owner publishes,
 * so a goal is never synthesized twice even when the parallel driver
 * races identical expressions. Because synthesis is deterministic
 * (seeded RNG, ordered search), the published result — including its
 * per-stage statistics — is identical no matter which thread won,
 * which keeps benchmark statistics bit-identical across job counts.
 *
 * The table is a template over the stored result so the HVX
 * RakeResult cache and the per-backend BackendRakeResult caches share
 * one implementation. Backend caches are keyed by backend name (one
 * table per target ISA); the HVX fast path keeps its dedicated
 * singleton untouched.
 */
#ifndef RAKE_SYNTH_CACHE_H
#define RAKE_SYNTH_CACHE_H

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "synth/rake.h"

namespace rake::synth {

/** Cache effectiveness counters (monotonic per process). */
struct CacheStats {
    int64_t hits = 0;    ///< lookups answered from the table
    int64_t misses = 0;  ///< lookups that had to synthesize
    int64_t entries = 0; ///< distinct keys currently stored

    // Second (on-disk) tier, see synth/persist.h. All zero unless a
    // cache directory is configured, so reports and JSON can emit
    // them only when nonzero and no-cache output stays bit-identical.
    int64_t disk_hits = 0;    ///< queries answered from the disk tier
    int64_t disk_writes = 0;  ///< completed results persisted to disk
    int64_t disk_invalid = 0; ///< entries rejected (stale version,
                              ///< truncated/corrupt file): misses

    /**
     * Hits that found their entry still *in flight* and blocked until
     * the owner published — the cross-client dedupe the compile
     * server reports as `inflight_dedup`. A subset of `hits`; always
     * zero when queries never overlap (e.g. a single-threaded run),
     * so existing reports are unaffected.
     */
    int64_t inflight_hits = 0;

    /**
     * Completed CEGIS executions against this cache's target —
     * queries no tier (memory/disk/rules) could answer. Reported by
     * the query layer (synth/rake.cc), like the disk counters, and
     * counted even for use_cache = false queries. Timed-out searches
     * are not counted: they retract instead of completing.
     */
    int64_t synth_runs = 0;
};

/** Everything beyond the expression that can change a Rake run. */
uint64_t options_fingerprint(const RakeOptions &opts);

namespace detail {

inline uint64_t
cache_mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h * 0x100000001b3ull;
}

} // namespace detail

template <typename Result> class BasicSynthCache
{
  public:
    /**
     * One cache slot. `done` flips exactly once, under the cache
     * mutex; `result` is nullopt while in flight and also when the
     * owning synthesis failed (failures are cached: they are as
     * deterministic as successes). A deadline-aborted synthesis is
     * *not* a failure — the owner retract()s the entry instead, so a
     * timeout never poisons later, unhurried queries.
     */
    struct Entry {
        hir::ExprPtr expr;  ///< key expression (deep-compared)
        uint64_t fingerprint = 0;
        bool done = false;
        bool aborted = false; ///< retracted: waiters must re-acquire
        std::optional<Result> result;
    };
    using EntryPtr = std::shared_ptr<Entry>;

    /**
     * Look up (expr, fingerprint). On a hit, blocks until the entry
     * is published if another thread is still synthesizing it, then
     * returns it with *owner = false. On a miss, installs an
     * in-flight entry and returns it with *owner = true: the caller
     * MUST publish() or retract() it exactly once (publishing a
     * failure is fine), or every later lookup of the key deadlocks.
     *
     * A waiter whose entry gets retract()ed re-scans and may become
     * the new owner. A waiter whose own `deadline` expires while
     * blocked throws TimeoutError — its budget is spent even though
     * it never synthesized anything.
     */
    EntryPtr
    acquire(const hir::ExprPtr &expr, uint64_t fingerprint, bool *owner,
            const Deadline &deadline = {})
    {
        const size_t bucket = detail::cache_mix(expr->hash(), fingerprint);
        std::unique_lock<std::mutex> lock(mutex_);
        bool waited = false; // found the entry before its owner
                             // published: an in-flight dedupe
        for (;;) {
            std::vector<EntryPtr> &slots = table_[bucket];
            EntryPtr e;
            for (const EntryPtr &slot : slots) {
                if (slot->fingerprint == fingerprint &&
                    hir::equal(slot->expr, expr)) {
                    // Copy the shared_ptr: waiting releases the
                    // mutex, and a concurrent insert may reallocate
                    // the bucket vector.
                    e = slot;
                    break;
                }
            }
            if (!e) {
                auto entry = std::make_shared<Entry>();
                entry->expr = expr;
                entry->fingerprint = fingerprint;
                table_[bucket].push_back(entry);
                ++stats_.misses;
                ++stats_.entries;
                *owner = true;
                return entry;
            }
            if (!e->done)
                waited = true;
            // Another thread may still be synthesizing this key;
            // block until it publishes rather than duplicating work —
            // but no longer than the waiter's own deadline. A
            // deadline can be token-only (e.g. ThreadPool::
            // cancel_pending() firing the run token with no
            // per-expression expiry), and a condition variable cannot
            // observe a CancelToken directly, so an active deadline
            // waits in bounded slices and re-checks both halves
            // between them instead of blocking forever.
            if (deadline.active()) {
                while (!e->done) {
                    auto slice = std::chrono::steady_clock::now() +
                                 std::chrono::milliseconds(10);
                    if (deadline.has_expiry() &&
                        deadline.expiry() < slice)
                        slice = deadline.expiry();
                    published_.wait_until(lock, slice,
                                          [&e] { return e->done; });
                    if (e->done)
                        break;
                    const bool cancelled =
                        deadline.token().valid() &&
                        deadline.token().cancelled();
                    const bool expired =
                        deadline.has_expiry() &&
                        std::chrono::steady_clock::now() >=
                            deadline.expiry();
                    if (cancelled || expired)
                        throw TimeoutError("waiting on an in-flight "
                                           "synthesis of the same "
                                           "goal");
                }
            } else {
                published_.wait(lock, [&e] { return e->done; });
            }
            if (e->aborted)
                continue; // retracted by a timed-out owner: retry
            ++stats_.hits;
            if (waited)
                ++stats_.inflight_hits;
            *owner = false;
            return e;
        }
    }

    /** Publish the owner's outcome and wake all waiters. */
    void
    publish(const EntryPtr &entry, std::optional<Result> result)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            entry->result = std::move(result);
            entry->done = true;
        }
        published_.notify_all();
    }

    /**
     * The owner's other exit: its synthesis was aborted by a deadline,
     * so the outcome says nothing about the key. Removes the entry
     * from the table (a later query synthesizes afresh) and wakes
     * waiters, which re-acquire. The retraction is not counted as a
     * hit or an entry — from the stats' perspective the aborted
     * lookup was a miss that produced nothing.
     */
    void
    retract(const EntryPtr &entry)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            const size_t bucket = detail::cache_mix(
                entry->expr->hash(), entry->fingerprint);
            auto it = table_.find(bucket);
            if (it != table_.end()) {
                auto &slots = it->second;
                for (size_t i = 0; i < slots.size(); ++i) {
                    if (slots[i] == entry) {
                        slots.erase(slots.begin() +
                                    static_cast<ptrdiff_t>(i));
                        --stats_.entries;
                        break;
                    }
                }
            }
            entry->aborted = true;
            entry->done = true;
        }
        published_.notify_all();
    }

    CacheStats
    stats() const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        return stats_;
    }

    /**
     * Disk-tier accounting (synth/persist.h). The persistent store
     * lives below this table — it has no access to the per-target
     * counters — so the query layer reports disk outcomes here and
     * every driver keeps reading one CacheStats per target. Counted
     * even for uncached (use_cache = false) queries: the counters are
     * process-wide effectiveness numbers, not table contents.
     */
    void
    note_disk_hit()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ++stats_.disk_hits;
    }

    void
    note_disk_write()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ++stats_.disk_writes;
    }

    void
    note_disk_invalid()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ++stats_.disk_invalid;
    }

    /** One completed CEGIS run (see CacheStats::synth_runs). */
    void
    note_synth_run()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ++stats_.synth_runs;
    }

    /** Drop every entry and zero the counters (tests, benchmarks). */
    void
    clear()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        table_.clear();
        stats_ = CacheStats{};
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable published_;
    std::unordered_map<size_t, std::vector<EntryPtr>> table_;
    CacheStats stats_;
};

/** The HVX cache (dedicated type, kept for source compatibility). */
using SynthCache = BasicSynthCache<RakeResult>;

/** Per-target cache used by select_instructions_for(). */
using BackendSynthCache = BasicSynthCache<BackendRakeResult>;

/** The process-wide cache select_instructions() consults. */
SynthCache &synthesis_cache();

/**
 * The process-wide cache for one backend, keyed by TargetISA::name().
 * Separate tables per target: the same HIR expression lowers to
 * different instruction sets, and a table per name keeps clear()
 * (tests, benchmarks) scoped to one target.
 */
BackendSynthCache &backend_synthesis_cache(const std::string &backend);

} // namespace rake::synth

#endif // RAKE_SYNTH_CACHE_H
