#include "synth/profile.h"

#include <iomanip>
#include <sstream>

namespace rake::synth {

namespace {

void
accumulate(QueryStats &into, const QueryStats &from)
{
    into.queries += from.queries;
    into.accepted += from.accepted;
    into.counterexamples += from.counterexamples;
    into.dedup_skips += from.dedup_skips;
    into.ref_cache_hits += from.ref_cache_hits;
    into.seconds += from.seconds;
}

/** Stage-stat accumulation shared by both result flavors. */
template <typename ResultT>
void
add_run(SynthProfile &p, const ResultT &r)
{
    ++p.runs;
    if (r.status == SynthStatus::TimedOut)
        ++p.timeouts;
    if (r.degraded)
        ++p.degraded;
    // Instance rejects are rule-stage work spent on this query even
    // when the answer then came from elsewhere, so they accumulate
    // before the per-tier early returns below.
    p.rule_instance_rejects += r.rule_rejects;
    if (r.cache_hit) {
        // Cached runs carry the original synthesis's statistics for
        // Table 1, but no time was spent re-deriving them; folding
        // them in would double-count effort.
        ++p.cache_hits;
        return;
    }
    if (r.disk_hit) {
        // Same story for the on-disk tier: the stats are a previous
        // process's effort, already counted when it synthesized.
        ++p.disk_hits;
        return;
    }
    if (r.rule_hit) {
        // A rule hit ran no synthesis stage at all: the rule was
        // verified once offline, so there is no effort to fold in.
        ++p.rule_hits;
        return;
    }
    accumulate(p.lift_update, r.lift.update);
    accumulate(p.lift_replace, r.lift.replace);
    accumulate(p.lift_extend, r.lift.extend);
    accumulate(p.sketch, r.lower.sketch);
    p.swizzle.queries += r.lower.swizzle.queries;
    p.swizzle.solved += r.lower.swizzle.solved;
    p.swizzle.unsat += r.lower.swizzle.unsat;
    p.swizzle.memo_hits += r.lower.swizzle.memo_hits;
    p.swizzle.seconds += r.lower.swizzle.seconds;
    p.backtracks += r.lower.backtracks;
}

} // namespace

void
SynthProfile::add(const RakeResult &r)
{
    add_run(*this, r);
}

void
SynthProfile::add(const BackendRakeResult &r)
{
    add_run(*this, r);
}

void
SynthProfile::merge(const SynthProfile &o)
{
    accumulate(lift_update, o.lift_update);
    accumulate(lift_replace, o.lift_replace);
    accumulate(lift_extend, o.lift_extend);
    accumulate(sketch, o.sketch);
    swizzle.queries += o.swizzle.queries;
    swizzle.solved += o.swizzle.solved;
    swizzle.unsat += o.swizzle.unsat;
    swizzle.memo_hits += o.swizzle.memo_hits;
    swizzle.seconds += o.swizzle.seconds;
    backtracks += o.backtracks;
    runs += o.runs;
    cache_hits += o.cache_hits;
    disk_hits += o.disk_hits;
    rule_hits += o.rule_hits;
    rule_instance_rejects += o.rule_instance_rejects;
    // The table size is a property of the loaded configuration, not
    // per-run effort: merging profiles of the same run keeps it.
    if (o.rule_table_size > rule_table_size)
        rule_table_size = o.rule_table_size;
    timeouts += o.timeouts;
    degraded += o.degraded;
    stages += o.stages;
    boundary_swizzles += o.boundary_swizzles;
    hashcons_hits += o.hashcons_hits;
}

double
SynthProfile::total_seconds() const
{
    return lift_update.seconds + lift_replace.seconds +
           lift_extend.seconds + sketch.seconds + swizzle.seconds;
}

int
SynthProfile::total_queries() const
{
    return lift_update.queries + lift_replace.queries +
           lift_extend.queries + sketch.queries + swizzle.queries;
}

int
SynthProfile::total_dedup_skips() const
{
    return lift_update.dedup_skips + lift_replace.dedup_skips +
           lift_extend.dedup_skips + sketch.dedup_skips;
}

int
SynthProfile::total_ref_cache_hits() const
{
    return lift_update.ref_cache_hits + lift_replace.ref_cache_hits +
           lift_extend.ref_cache_hits + sketch.ref_cache_hits;
}

std::string
SynthProfile::to_string() const
{
    const double total = total_seconds();
    std::ostringstream os;
    os << std::fixed;

    auto pct = [&](double s) {
        return total > 0.0 ? 100.0 * s / total : 0.0;
    };
    auto row = [&](const char *name, const QueryStats &q) {
        os << "  " << std::left << std::setw(14) << name << std::right
           << std::setw(8) << q.queries << std::setw(8) << q.accepted
           << std::setw(8) << q.counterexamples << std::setw(8)
           << q.dedup_skips << std::setw(8) << q.ref_cache_hits
           << std::setw(10) << std::setprecision(3) << q.seconds * 1e3
           << std::setw(7) << std::setprecision(1) << pct(q.seconds)
           << "%\n";
    };

    // The disk clause appears only when the tier answered something,
    // so runs without --cache-dir render bit-identically.
    os << "synthesis profile (" << runs << " runs, " << cache_hits
       << " from cache";
    if (disk_hits > 0)
        os << ", " << disk_hits << " from disk";
    if (rule_hits > 0)
        os << ", " << rule_hits << " from rules";
    os << ")\n";
    os << "  " << std::left << std::setw(14) << "stage" << std::right
       << std::setw(8) << "queries" << std::setw(8) << "accept"
       << std::setw(8) << "ce" << std::setw(8) << "dedup"
       << std::setw(8) << "refhit" << std::setw(10) << "ms"
       << std::setw(8) << "share\n";
    row("lift/update", lift_update);
    row("lift/replace", lift_replace);
    row("lift/extend", lift_extend);
    row("lower/sketch", sketch);
    os << "  " << std::left << std::setw(14) << "lower/swizzle"
       << std::right << std::setw(8) << swizzle.queries << std::setw(8)
       << swizzle.solved << std::setw(8) << swizzle.unsat
       << std::setw(8) << "-" << std::setw(8) << swizzle.memo_hits
       << std::setw(10) << std::setprecision(3)
       << swizzle.seconds * 1e3 << std::setw(7)
       << std::setprecision(1) << pct(swizzle.seconds) << "%\n";

    const int queries = total_queries();
    const int dedup = total_dedup_skips();
    const int refhits = total_ref_cache_hits();
    os << "  total: " << std::setprecision(3) << total * 1e3 << " ms, "
       << queries << " queries, " << backtracks << " backtracks\n";
    os << "  fast path: " << dedup << " dedup skips";
    if (queries > 0)
        os << " (" << std::setprecision(1)
           << 100.0 * dedup / queries << "% of queries)";
    os << ", " << refhits << " reference-cache hits, "
       << swizzle.memo_hits << " swizzle memo hits\n";
    // Like the disk clause: the rules line appears only when a rule
    // table was actually in play, so rule-free runs stay bit-identical.
    if (rule_hits > 0 || rule_instance_rejects > 0 ||
        rule_table_size > 0)
        os << "  rules: " << rule_table_size << " loaded, " << rule_hits
           << " hits, " << rule_instance_rejects
           << " instance rejects\n";
    // Emitted only when a deadline actually fired, so --profile output
    // with no (or a generous) --timeout-ms stays bit-identical.
    if (timeouts > 0 || degraded > 0)
        os << "  deadlines: " << timeouts << " timed out, " << degraded
           << " degraded to greedy selection\n";
    // Emitted only when a multi-stage DAG was compiled, so the flat
    // 21-benchmark suite's profile output stays bit-identical.
    if (stages > 0)
        os << "  pipeline: " << stages << " stages, "
           << boundary_swizzles << " boundary swizzles, "
           << hashcons_hits << " hash-cons hits\n";
    return os.str();
}

} // namespace rake::synth
