/**
 * @file
 * Synthesis specifications and example-input generation.
 *
 * A Spec wraps the HIR expression being compiled plus everything the
 * synthesizer needs to reason about it: its live data (the set of
 * loads), its scalar parameters, and a pool of example environments
 * used for counter-example-guided search (paper §2.2.1).
 */
#ifndef RAKE_SYNTH_SPEC_H
#define RAKE_SYNTH_SPEC_H

#include <set>
#include <string>
#include <vector>

#include "base/value.h"
#include "hir/analysis.h"
#include "hir/expr.h"
#include "support/rng.h"

namespace rake::synth {

/** The synthesis specification for one vector expression. */
struct Spec {
    hir::ExprPtr expr;                 ///< the reference expression
    std::set<hir::LoadRef> loads;      ///< live data
    std::set<std::string> vars;        ///< scalar parameters
    std::map<int, ScalarType> buffer_elem; ///< element type per buffer

    /** Build a spec from an expression (collects loads and vars). */
    static Spec from_expr(const hir::ExprPtr &e);
};

/**
 * Input-buffer geometry derived from a spec's load set.
 *
 * The buffer covers the reference expression's footprint plus a
 * margin on each side: synthesized candidates may legitimately read a
 * few elements beyond the reference loads (e.g. the second vector of
 * a sliding-window pair), and those reads must see real data — not
 * the edge-clamp — for equivalence checking to be trustworthy.
 */
struct BufferGeometry {
    ScalarType elem = ScalarType::UInt8;
    int min_dx = 0, max_dx = 0;
    int min_dy = 0, max_dy = 0;
    int lanes = 1;  ///< widest load lane count on this buffer
    int margin = 0; ///< extra columns on each side

    int x0() const { return min_dx - margin; }
    int y0() const { return min_dy; }
    int width() const { return max_dx - min_dx + lanes + 2 * margin; }
    int height() const { return max_dy - min_dy + 1; }
};

/** Geometry per buffer id referenced by the spec. */
std::map<int, BufferGeometry> buffer_geometry(const Spec &spec);

/**
 * Generates example environments covering the spec's live data.
 *
 * Buffers are sized to cover every load at every lane without
 * invoking the boundary condition, so equivalence over the examples
 * matches equivalence over the abstract cells. The first few
 * environments are deterministic corner patterns (zeros, maxima,
 * minima, ramps, alternation); the rest are seeded-random.
 */
class ExamplePool
{
  public:
    /**
     * Environments at indices below this are deterministic corner
     * patterns (zeros/small, maxima, minima, alternation, ramp);
     * every later index is seeded-random.
     */
    static constexpr int kCornerExamples = 5;

    ExamplePool(const Spec &spec, uint64_t seed = 1);

    /** The example at index i, generating more if needed. */
    const Env &at(int i);

    /** Number of examples generated so far. */
    int size() const { return static_cast<int>(envs_.size()); }

    /** Append an externally found counter-example. */
    void add(Env env) { envs_.push_back(std::move(env)); }

    /** Drop the most recent example (used to discard fresh trials). */
    void
    pop()
    {
        RAKE_CHECK(!envs_.empty(), "pop on empty example pool");
        envs_.pop_back();
    }

    /**
     * Generate the next randomized trial environment into a scratch
     * slot owned by the pool, without growing it. Draws from the same
     * rng stream as at(size()), so a next_trial()/adopt_trial()
     * sequence is bit-identical to the old at()/pop() dance but never
     * copies or reallocates buffers. The reference is valid until the
     * next next_trial() or adopt_trial() call.
     */
    const Env &next_trial();

    /**
     * Promote the scratch trial from next_trial() into the pool (it
     * turned out to be a counter-example). Moves, never copies.
     */
    void adopt_trial();

  private:
    const Spec &spec_;
    Rng rng_;
    std::vector<Env> envs_;
    std::map<int, BufferGeometry> geometry_;
    Env scratch_;
    bool scratch_valid_ = false;
};

/** Build one environment for a geometry with the given fill pattern. */
Env make_example_env(const std::map<int, BufferGeometry> &geometry,
                     const std::set<std::string> &vars, int pattern,
                     Rng &rng);

} // namespace rake::synth

#endif // RAKE_SYNTH_SPEC_H
