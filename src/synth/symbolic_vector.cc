#include "synth/symbolic_vector.h"

#include "base/arith.h"
#include "hvx/interp.h"
#include "support/error.h"

namespace rake::synth {

std::string
to_string(Layout l)
{
    return l == Layout::Linear ? "linear" : "deinterleaved";
}

int
layout_source_lane(Layout layout, int lanes, int i)
{
    if (layout == Layout::Linear || lanes % 2 != 0)
        return i;
    const int h = lanes / 2;
    return i < h ? 2 * i : 2 * (i - h) + 1;
}

Value
apply_layout(const Value &linear, Layout layout)
{
    Value v;
    apply_layout_into(linear, layout, v);
    return v;
}

void
apply_layout_into(const Value &linear, Layout layout, Value &out)
{
    out.reset(linear.type);
    if (layout == Layout::Linear) {
        out.lanes = linear.lanes;
        return;
    }
    for (int i = 0; i < linear.type.lanes; ++i)
        out[i] = linear[layout_source_lane(layout, linear.type.lanes, i)];
}

bool
Cell::operator==(const Cell &o) const
{
    return kind == o.kind && buffer == o.buffer && dy == o.dy &&
           x == o.x && source == o.source && lane == o.lane;
}

bool
Cell::operator<(const Cell &o) const
{
    auto key = [](const Cell &c) {
        return std::make_tuple(static_cast<int>(c.kind), c.buffer, c.dy,
                               c.x, c.source, c.lane);
    };
    return key(*this) < key(o);
}

Arrangement
window_cells(int buffer, int dy, int x0, int n)
{
    Arrangement a;
    a.reserve(n);
    for (int i = 0; i < n; ++i)
        a.push_back(Cell::buf(buffer, dy, x0 + i));
    return a;
}

Arrangement
source_cells(int source, int lanes)
{
    Arrangement a;
    a.reserve(lanes);
    for (int i = 0; i < lanes; ++i)
        a.push_back(Cell::src(source, i));
    return a;
}

Arrangement
concat(const Arrangement &a, const Arrangement &b)
{
    Arrangement out = a;
    out.insert(out.end(), b.begin(), b.end());
    return out;
}

Arrangement
deinterleave(const Arrangement &a)
{
    RAKE_CHECK(a.size() % 2 == 0, "deinterleave of odd arrangement");
    Arrangement out;
    out.reserve(a.size());
    for (size_t i = 0; i < a.size(); i += 2)
        out.push_back(a[i]);
    for (size_t i = 1; i < a.size(); i += 2)
        out.push_back(a[i]);
    return out;
}

Arrangement
interleave(const Arrangement &a)
{
    RAKE_CHECK(a.size() % 2 == 0, "interleave of odd arrangement");
    const size_t h = a.size() / 2;
    Arrangement out(a.size(), Cell::zero());
    for (size_t i = 0; i < h; ++i) {
        out[2 * i] = a[i];
        out[2 * i + 1] = a[h + i];
    }
    return out;
}

Arrangement
rotate(const Arrangement &a, int r)
{
    const int n = static_cast<int>(a.size());
    Arrangement out(a.size(), Cell::zero());
    for (int i = 0; i < n; ++i)
        out[i] = a[(i + r) % n];
    return out;
}

bool
is_window(const Arrangement &a, int *buffer, int *dy, int *x0)
{
    if (a.empty() || a[0].kind != Cell::Kind::Buf)
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const Cell &c = a[i];
        if (c.kind != Cell::Kind::Buf || c.buffer != a[0].buffer ||
            c.dy != a[0].dy || c.x != a[0].x + static_cast<int>(i))
            return false;
    }
    *buffer = a[0].buffer;
    *dy = a[0].dy;
    *x0 = a[0].x;
    return true;
}

bool
is_source_identity(const Arrangement &a, int *source)
{
    if (a.empty() || a[0].kind != Cell::Kind::Src || a[0].lane != 0)
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const Cell &c = a[i];
        if (c.kind != Cell::Kind::Src || c.source != a[0].source ||
            c.lane != static_cast<int>(i))
            return false;
    }
    *source = a[0].source;
    return true;
}

Value
arrangement_value(const Hole &hole, const Env &env,
                  const hvx::HoleOracle &oracle)
{
    // Evaluate the sources once for this environment. Pure ??load /
    // zero holes (the common case) skip the interpreter entirely.
    std::vector<Value> src_values;
    if (!hole.sources.empty()) {
        src_values.reserve(hole.sources.size());
        hvx::Interpreter interp(env, oracle);
        for (const auto &s : hole.sources)
            src_values.push_back(interp.eval(
                std::static_pointer_cast<const hvx::Instr>(s)));
    }
    return arrangement_value_from(hole, env, src_values);
}

Value
arrangement_value_from(const Hole &hole, const Env &env,
                       const std::vector<Value> &src_values)
{
    RAKE_CHECK(static_cast<int>(hole.cells.size()) == hole.type.lanes,
               "hole arrangement size mismatch");
    Value v = Value::zero(hole.type);
    for (int i = 0; i < hole.type.lanes; ++i) {
        const Cell &c = hole.cells[i];
        switch (c.kind) {
          case Cell::Kind::Zero:
            v[i] = 0;
            break;
          case Cell::Kind::Buf: {
            const Buffer &buf = env.buffer(c.buffer);
            v[i] = wrap(hole.type.elem,
                        buf.at(env.x + c.x, env.y + c.dy));
            break;
          }
          case Cell::Kind::Src: {
            const Value &sv = src_values[c.source];
            RAKE_CHECK(c.lane >= 0 && c.lane < sv.type.lanes,
                       "source lane out of range");
            v[i] = wrap(hole.type.elem, sv[c.lane]);
            break;
          }
        }
    }
    return v;
}

} // namespace rake::synth
