/**
 * @file
 * The on-disk tier of the cross-expression synthesis cache.
 *
 * The paper's compile time is dominated by per-expression synthesis
 * (Table 1), and most queries a fleet issues re-derive shapes some
 * process already solved (Daly et al., PAPERS.md). The in-memory
 * cache (synth/cache.h) dies with the process; this store makes
 * completed results survive it: each (backend, expression, options)
 * key maps to one small text file, content-addressed by the
 * expression's canonical s-expression plus the options fingerprint,
 * so a warm directory answers repeated queries in file-read time
 * instead of re-paying CEGIS.
 *
 * Versioning: every entry records explicit version keys — the
 * backend name, the backend's grammar version, its cost-model
 * version, and the serialization-format version. Bumping any one
 * makes old entries fail validation on load (counted as
 * `disk_invalid`, treated as a miss, overwritten by the next store),
 * so a stale cache self-invalidates instead of replaying selections
 * today's search would not make.
 *
 * Crash safety: entries are written to a per-process temp file and
 * atomically renamed into place; one file per entry, so concurrent
 * writers (even across processes) never take a global lock and a
 * torn write can never be observed. A reader that finds a truncated
 * or corrupt file treats it as a miss, never an error.
 *
 * What is never persisted: timed-out or degraded results (mirroring
 * the in-memory retract() protocol — an aborted search says nothing
 * about the key), and results published on an exception path. A
 * deterministic "no solution" outcome *is* persisted: it is as
 * reproducible as a success.
 *
 * The `lifted` intermediate (uir::UExprPtr) is deliberately not
 * serialized — no consumer of a cached selection reads it, and the
 * UIR has no parser. Disk hits carry a null `lifted`.
 */
#ifndef RAKE_SYNTH_PERSIST_H
#define RAKE_SYNTH_PERSIST_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "backend/target_isa.h"
#include "synth/rake.h"

namespace rake::synth {

/** Serialization-format version (the file layout itself). */
inline constexpr int kPersistFormatVersion = 1;

/**
 * Version keys of the HVX fast path (select_instructions does not go
 * through a TargetISA instance). Bump on grammar / cost-model
 * changes, exactly like TargetISA::grammar_version().
 */
inline constexpr int kHvxGrammarVersion = 1;
inline constexpr int kHvxCostModelVersion = 1;

/** Disk-tier counters (monotonic per store). */
struct DiskCacheStats {
    int64_t hits = 0;    ///< valid entries answered from disk
    int64_t writes = 0;  ///< entries persisted
    int64_t invalid = 0; ///< entries rejected: stale version keys or
                         ///< truncated/corrupt files (treated as miss)
};

/** Outcome of one disk lookup. */
template <typename Result> struct DiskLookup {
    bool hit = false; ///< a valid entry existed for the key
    bool invalid = false; ///< an entry existed but was rejected
    std::optional<Result> result; ///< payload (nullopt = cached
                                  ///< deterministic no-solution)
};

/**
 * One cache directory. Thread-safe: lookups and stores touch only
 * per-entry files plus atomic counters. Obtain instances through
 * persistent_store() so every query against the same directory
 * shares one stats block.
 */
class PersistentStore
{
  public:
    /** Creates `dir` (and parents) if missing; throws UserError when
     *  that fails. */
    explicit PersistentStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /** HVX fast-path flavor (backend name "hvx"). */
    DiskLookup<RakeResult> load(const hir::ExprPtr &normalized,
                                uint64_t options_fp);

    /**
     * Persist a completed outcome; returns false (and writes
     * nothing) for results that must never land on disk — degraded
     * or timed-out queries — or on I/O failure.
     */
    bool store(const hir::ExprPtr &normalized, uint64_t options_fp,
               const std::optional<RakeResult> &result);

    /**
     * Backend-parameterized flavor: the instruction DAG round-trips
     * through TargetISA::instr_to_sexpr / instr_from_sexpr and the
     * entry carries the backend's own version keys. A backend
     * without serialization support (empty instr_to_sexpr) disables
     * the disk tier: load misses, store declines.
     */
    DiskLookup<BackendRakeResult>
    load_backend(const hir::ExprPtr &normalized, uint64_t options_fp,
                 const backend::TargetISA &isa);

    bool store_backend(const hir::ExprPtr &normalized,
                       uint64_t options_fp,
                       const backend::TargetISA &isa,
                       const std::optional<BackendRakeResult> &result);

    DiskCacheStats stats() const;

    /** Path of the entry file for a key (tests, tooling). */
    std::string entry_path(const std::string &backend,
                           const hir::ExprPtr &normalized,
                           uint64_t options_fp) const;

  private:
    std::string dir_;
    std::atomic<int64_t> hits_{0};
    std::atomic<int64_t> writes_{0};
    std::atomic<int64_t> invalid_{0};
};

/**
 * Process-wide store registry, one per directory; nullptr when `dir`
 * is empty (the disk tier is off). Stores are never destroyed — like
 * the synthesis-cache singletons, they live for the process.
 */
PersistentStore *persistent_store(const std::string &dir);

/**
 * One solved entry as seen by the offline rule miner
 * (tools/rake_mine_rules): the recorded version keys plus the raw
 * (canonical HIR sexpr, instruction sexpr) pair. `instr` is empty
 * for persisted no-solution outcomes.
 */
struct CacheEntryView {
    std::string backend;
    int grammar = 0;
    int cost_model = 0;
    std::string expr;
    std::string instr;
};

/**
 * Walk a cache directory and return every parseable entry, sorted by
 * filename for a deterministic mining order. Unlike load(), this
 * does not validate against an expected key — the miner wants every
 * backend's solved pairs and filters on version keys itself. Corrupt
 * or truncated files are silently skipped (they are a miss for the
 * cache too); a missing directory yields an empty list.
 */
std::vector<CacheEntryView> scan_cache_dir(const std::string &dir);

/**
 * Resolve the cache-directory knob: an explicit path wins, then the
 * RAKE_CACHE_DIR environment variable, then "" (disk tier off).
 * Shared by every CLI that exposes --cache-dir.
 */
std::string resolve_cache_dir(const std::string &requested);

} // namespace rake::synth

#endif // RAKE_SYNTH_PERSIST_H
