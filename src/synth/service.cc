#include "synth/service.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "hir/sexpr.h"
#include "support/error.h"

namespace rake::synth {

namespace {

std::string
fmt_us(double v)
{
    // Bucket bounds are small integral powers of two; render them as
    // plain integers so the JSON is stable and grep-able.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

} // namespace

std::string
ServiceMetrics::to_json() const
{
    std::ostringstream os;
    os << "{\"requests\":" << requests
       << ",\"memory_hits\":" << memory_hits
       << ",\"disk_hits\":" << disk_hits
       << ",\"rule_hits\":" << rule_hits
       << ",\"cegis_runs\":" << cegis_runs
       << ",\"no_solution\":" << no_solution
       << ",\"timed_out\":" << timed_out
       << ",\"degraded\":" << degraded
       << ",\"overloaded\":" << overloaded
       << ",\"errors\":" << errors
       << ",\"inflight_dedup\":" << inflight_dedup
       << ",\"latency_count\":" << latency_count
       << ",\"latency_p50_us\":" << fmt_us(latency_p50_us)
       << ",\"latency_p99_us\":" << fmt_us(latency_p99_us) << "}";
    return os.str();
}

SelectService::SelectService(ServiceConfig config)
    : config_(std::move(config))
{
    RAKE_USER_CHECK(!config_.backends.empty(),
                    "service needs at least one backend");
    // The service's cache counters are *deltas* from this snapshot,
    // so a server embedded in a process that already synthesized
    // (tests) reports only its own traffic.
    baseline_ = cache_totals();
}

CacheStats
SelectService::cache_totals() const
{
    CacheStats total;
    for (const auto &[name, factory] : config_.backends) {
        const CacheStats s = backend_synthesis_cache(name).stats();
        total.hits += s.hits;
        total.misses += s.misses;
        total.inflight_hits += s.inflight_hits;
        total.synth_runs += s.synth_runs;
        total.disk_hits += s.disk_hits;
        total.disk_writes += s.disk_writes;
        total.disk_invalid += s.disk_invalid;
    }
    return total;
}

ServiceReply
SelectService::select(const ServiceRequest &request)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    ServiceReply reply;

    const auto it = config_.backends.find(request.backend);
    if (it == config_.backends.end()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        reply.status = SynthStatus::Error;
        reply.error = "unknown backend: " + request.backend;
        return reply;
    }

    hir::ExprPtr expr;
    try {
        expr = hir::parse_expr(request.expr);
    } catch (const UserError &e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        reply.status = SynthStatus::Error;
        reply.error = e.what();
        return reply;
    }

    RakeOptions opts = config_.rake;
    opts.deadline = opts.deadline.sooner(request.deadline);

    const auto t0 = std::chrono::steady_clock::now();
    std::optional<BackendRakeResult> result;
    std::unique_ptr<backend::TargetISA> isa;
    try {
        isa = it->second();
        result = select_instructions_for(expr, *isa, opts);
    } catch (const std::exception &e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        reply.status = SynthStatus::Error;
        reply.error = e.what();
        return reply;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    latency_.record_seconds(seconds);

    if (!result) {
        // Deterministic failure (either fresh or replayed from a
        // tier; the tiers don't tag cached failures, so no tier is
        // claimed for them).
        no_solution_.fetch_add(1, std::memory_order_relaxed);
        reply.status = SynthStatus::NoSolution;
        reply.tier = "none";
        return reply;
    }

    reply.status = result->status;
    reply.degraded = result->degraded;
    if (result->degraded) {
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        degraded_.fetch_add(1, std::memory_order_relaxed);
        reply.tier = "none"; // greedy fallback, not a tier answer
    } else if (result->cache_hit) {
        memory_hits_.fetch_add(1, std::memory_order_relaxed);
        reply.tier = "memory";
    } else if (result->disk_hit) {
        disk_hits_.fetch_add(1, std::memory_order_relaxed);
        reply.tier = "disk";
    } else if (result->rule_hit) {
        rule_hits_.fetch_add(1, std::memory_order_relaxed);
        reply.tier = "rule";
    } else {
        reply.tier = "cegis";
    }
    if (result->instr) {
        reply.found = true;
        reply.instr = isa->instr_to_sexpr(result->instr);
    }
    return reply;
}

void
SelectService::note_shed()
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    overloaded_.fetch_add(1, std::memory_order_relaxed);
}

ServiceMetrics
SelectService::metrics() const
{
    const CacheStats now = cache_totals();
    ServiceMetrics m;
    m.requests = requests_.load(std::memory_order_relaxed);
    m.memory_hits = memory_hits_.load(std::memory_order_relaxed);
    m.disk_hits = disk_hits_.load(std::memory_order_relaxed);
    m.rule_hits = rule_hits_.load(std::memory_order_relaxed);
    m.cegis_runs = now.synth_runs - baseline_.synth_runs;
    m.no_solution = no_solution_.load(std::memory_order_relaxed);
    m.timed_out = timed_out_.load(std::memory_order_relaxed);
    m.degraded = degraded_.load(std::memory_order_relaxed);
    m.overloaded = overloaded_.load(std::memory_order_relaxed);
    m.errors = errors_.load(std::memory_order_relaxed);
    m.inflight_dedup = now.inflight_hits - baseline_.inflight_hits;
    m.latency_count = latency_.count();
    m.latency_p50_us = latency_.quantile_us(0.50);
    m.latency_p99_us = latency_.quantile_us(0.99);
    return m;
}

} // namespace rake::synth
