#include "synth/swizzle.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "sim/linearize.h"
#include "sim/simulator.h"
#include "support/error.h"

namespace rake::synth {

namespace {

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/** Is `a` exactly one half (lo or hi) of a source? */
bool
is_source_half(const Arrangement &a,
               const std::vector<hvx::InstrPtr> &sources, int *source,
               bool *hi)
{
    if (a.empty() || a[0].kind != Cell::Kind::Src)
        return false;
    const int s = a[0].source;
    if (s >= static_cast<int>(sources.size()))
        return false;
    const int src_lanes = sources[s]->type().lanes;
    const int n = static_cast<int>(a.size());
    if (src_lanes != 2 * n)
        return false;
    for (int offset : {0, n}) {
        bool match = true;
        for (int i = 0; i < n; ++i) {
            const Cell &c = a[i];
            if (c.kind != Cell::Kind::Src || c.source != s ||
                c.lane != offset + i) {
                match = false;
                break;
            }
        }
        if (match) {
            *source = s;
            *hi = offset == n;
            return true;
        }
    }
    return false;
}

/**
 * View-based structural checks: `at(i)` yields cell i of a conceptual
 * arrangement of size n without materializing it. The rotation rule
 * probes every rotation of a goal, and building each rotation (plus
 * its interleave / deinterleave images) just to reject it dominated
 * the swizzle search; the views make rejection allocation-free.
 */
template <typename At>
bool
window_view(int n, const At &at)
{
    const Cell &c0 = at(0);
    if (c0.kind != Cell::Kind::Buf)
        return false;
    for (int i = 1; i < n; ++i) {
        const Cell &c = at(i);
        if (c.kind != Cell::Kind::Buf || c.buffer != c0.buffer ||
            c.dy != c0.dy || c.x != c0.x + i)
            return false;
    }
    return true;
}

template <typename At>
bool
source_identity_view(int n, const At &at)
{
    const Cell &c0 = at(0);
    if (c0.kind != Cell::Kind::Src || c0.lane != 0)
        return false;
    for (int i = 1; i < n; ++i) {
        const Cell &c = at(i);
        if (c.kind != Cell::Kind::Src || c.source != c0.source ||
            c.lane != i)
            return false;
    }
    return true;
}

} // namespace

size_t
SwizzleSolver::KeyHash::operator()(const Key &k) const
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t x) { h = (h ^ x) * 1099511628211ull; };
    for (const Cell &c : std::get<0>(k)) {
        mix(static_cast<uint64_t>(c.kind));
        mix(static_cast<uint64_t>(static_cast<uint32_t>(c.buffer)));
        mix(static_cast<uint64_t>(static_cast<uint32_t>(c.dy)));
        mix(static_cast<uint64_t>(static_cast<uint32_t>(c.x)));
        mix(static_cast<uint64_t>(static_cast<uint32_t>(c.source)));
        mix(static_cast<uint64_t>(static_cast<uint32_t>(c.lane)));
    }
    mix(static_cast<uint64_t>(static_cast<int>(std::get<1>(k))));
    for (const hvx::Instr *p : std::get<2>(k))
        mix(reinterpret_cast<uintptr_t>(p));
    return static_cast<size_t>(h);
}

SwizzleSolver::Key
SwizzleSolver::key_of(const Arrangement &arr, ScalarType elem,
                      const std::vector<hvx::InstrPtr> &sources)
{
    std::vector<const hvx::Instr *> ids;
    ids.reserve(sources.size());
    for (const auto &s : sources)
        ids.push_back(s.get());
    return std::make_tuple(arr, elem, std::move(ids));
}

hvx::InstrPtr
SwizzleSolver::read(int buffer, int dy, int x0, VecType type)
{
    auto key = std::make_tuple(buffer, dy, x0, type.lanes, type.elem);
    auto it = reads_.find(key);
    if (it != reads_.end())
        return it->second;
    hvx::InstrPtr r =
        hvx::Instr::make_read(hir::LoadRef{buffer, x0, dy}, type);
    reads_[key] = r;
    return r;
}

hvx::InstrPtr
SwizzleSolver::solve(const Hole &hole, int budget)
{
    const double t0 = now_seconds();
    // Hole sources are type-erased backend handles; this solver is
    // the HVX repertoire, so they must be hvx::Instr nodes.
    std::vector<hvx::InstrPtr> sources;
    sources.reserve(hole.sources.size());
    for (const auto &s : hole.sources)
        sources.push_back(
            std::static_pointer_cast<const hvx::Instr>(s));
    auto result = search(hole.cells, hole.type.elem, sources, budget);
    stats_.seconds += now_seconds() - t0;
    if (!result) {
        ++stats_.unsat;
        return nullptr;
    }
    ++stats_.solved;
    return result->first;
}

std::optional<std::pair<hvx::InstrPtr, int>>
SwizzleSolver::search(const Arrangement &arr, ScalarType elem,
                      const std::vector<hvx::InstrPtr> &sources,
                      int budget)
{
    // Poll before memo writes: a timeout unwinds out of here without
    // recording anything, so an aborted search can never masquerade
    // as a memoized "unsat within budget".
    deadline_.check("swizzle synthesis");

    if (budget < 0)
        return std::nullopt;
    const Key key = key_of(arr, elem, sources);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
        const Result &r = it->second;
        if (r.instr && r.cost <= budget) {
            ++stats_.memo_hits;
            return std::make_pair(r.instr, r.cost);
        }
        if (r.failed_budget >= budget) {
            ++stats_.memo_hits;
            return std::nullopt;
        }
    }
    if (!active_.insert(key).second)
        return std::nullopt; // already exploring this goal
    struct ActiveGuard {
        std::unordered_set<Key, KeyHash> &set;
        const Key &key;
        ~ActiveGuard() { set.erase(key); }
    } guard{active_, key};

    const int n = static_cast<int>(arr.size());
    const VecType type(elem, n);
    std::optional<std::pair<hvx::InstrPtr, int>> best;
    auto consider = [&](hvx::InstrPtr instr, int cost) {
        ++stats_.queries;
        if (!instr || cost > budget)
            return;
        if (!best || cost < best->second)
            best = std::make_pair(std::move(instr), cost);
    };

    // Rule: all-zero arrangement -> a zero splat (free in the loop).
    bool all_zero = true;
    for (const Cell &c : arr)
        all_zero &= c.kind == Cell::Kind::Zero;
    if (all_zero) {
        consider(hvx::Instr::make_splat(
                     hir::Expr::make_const(0, VecType(elem, 1)), n),
                 0);
    }

    // Rule: contiguous buffer window -> one vector read.
    {
        int buffer = 0, dy = 0, x0 = 0;
        if (is_window(arr, &buffer, &dy, &x0)) {
            hvx::InstrPtr r = read(buffer, dy, x0, type);
            consider(r, hvx::issue_count(*r, target_));
        }
    }

    // Rule: identity over one source -> the source itself (free).
    {
        int source = 0;
        if (is_source_identity(arr, &source) &&
            source < static_cast<int>(sources.size()) &&
            sources[source]->type() == type)
            consider(sources[source], 0);
    }

    // Rule: lo / hi half of a source (free register renames).
    {
        int source = 0;
        bool hi = false;
        if (is_source_half(arr, sources, &source, &hi) &&
            sources[source]->type().elem == elem) {
            consider(hvx::Instr::make(hi ? hvx::Opcode::VHi
                                         : hvx::Opcode::VLo,
                                      {sources[source]}),
                     0);
        }
    }

    // Merge into the memo without discarding what is already known:
    // keep the cheapest program ever found, and separately the
    // highest budget that failed.
    auto remember_solved = [&]() {
        Result &r = memo_[key];
        if (!r.instr || best->second < r.cost) {
            r.instr = best->first;
            r.cost = best->second;
        }
    };

    if (best && best->second == 0) {
        remember_solved();
        return best;
    }

    // Rule: interleave of a solvable arrangement (vshuffvdd).
    if (n % 2 == 0 && budget >= 1) {
        Arrangement d = deinterleave(arr);
        if (!(d == arr)) {
            if (auto sub = search(d, elem, sources, budget - 1)) {
                consider(hvx::Instr::make(hvx::Opcode::VShuffVdd,
                                          {sub->first}),
                         sub->second + 1);
            }
        }
    }

    // Rule: deinterleave of a solvable arrangement (vdealvdd).
    if (n % 2 == 0 && budget >= 1) {
        Arrangement s = interleave(arr);
        if (!(s == arr)) {
            if (auto sub = search(s, elem, sources, budget - 1)) {
                consider(hvx::Instr::make(hvx::Opcode::VDealVdd,
                                          {sub->first}),
                         sub->second + 1);
            }
        }
    }

    // Rule: concatenation of two solvable halves (vcombine).
    if (n % 2 == 0 && budget >= 1) {
        Arrangement lo(arr.begin(), arr.begin() + n / 2);
        Arrangement hi(arr.begin() + n / 2, arr.end());
        auto ls = search(lo, elem, sources, budget - 1);
        if (ls) {
            auto hs = search(hi, elem, sources,
                             budget - 1 - ls->second);
            if (hs) {
                consider(hvx::Instr::make(hvx::Opcode::VCombine,
                                          {ls->first, hs->first}),
                         ls->second + hs->second + 1);
            }
        }
    }

    // Rule: rotation of a structured arrangement (vror). Bounded:
    // the rotated goal must be a window, a source identity, or one
    // deal/shuffle away from one — recursing on arbitrary rotations
    // would make the search space explode.
    if (budget >= 1) {
        const int h = n / 2;
        for (int r = 1; r < n; ++r) {
            // unrot[i] = rotate(arr, n - r)[i] = arr[(i + n - r) % n].
            // Structuredness is decided through index views composed
            // on top of `arr`; the rotation is only materialized for
            // the (rare) rotations that pass.
            auto at_unrot = [&arr, n, r](int i) -> const Cell & {
                return arr[(i + n - r) % n];
            };
            // interleave(unrot)[j] reads unrot[j/2] (even j) or
            // unrot[h + j/2] (odd j); deinterleave(unrot)[j] reads
            // unrot[2j] (j < h) or unrot[2(j-h)+1].
            auto at_ileave = [&at_unrot, h](int j) -> const Cell & {
                return at_unrot(j % 2 == 0 ? j / 2 : h + j / 2);
            };
            auto at_deint = [&at_unrot, h](int j) -> const Cell & {
                return at_unrot(j < h ? 2 * j : 2 * (j - h) + 1);
            };
            bool structured =
                window_view(n, at_unrot) ||
                source_identity_view(n, at_unrot);
            if (!structured && n % 2 == 0)
                structured = window_view(n, at_ileave) ||
                             window_view(n, at_deint);
            if (!structured)
                continue;
            Arrangement unrot = rotate(arr, n - r);
            if (auto sub = search(unrot, elem, sources, budget - 1)) {
                consider(hvx::Instr::make(hvx::Opcode::VRor,
                                          {sub->first}, {r}),
                         sub->second + 1);
            }
        }
    }

    if (best) {
        remember_solved();
        return best;
    }
    Result &r = memo_[key];
    r.failed_budget = std::max(r.failed_budget, budget);
    return std::nullopt;
}

std::string
to_string(EdgeLayout layout)
{
    switch (layout) {
      case EdgeLayout::Natural:
        return "natural";
      case EdgeLayout::Interleaved:
        return "interleaved";
      case EdgeLayout::Deinterleaved:
        return "deinterleaved";
    }
    RAKE_UNREACHABLE("bad EdgeLayout");
}

namespace {

bool
is_boundary_permute(hvx::Opcode op)
{
    return op == hvx::Opcode::VShuffVdd || op == hvx::Opcode::VDealVdd;
}

/**
 * Producer side of a non-natural layout: store permute(root) instead
 * of root, cancelling an existing inverse permute at the root rather
 * than stacking a new one on top of it.
 */
hvx::InstrPtr
transform_producer(const hvx::InstrPtr &root, EdgeLayout layout)
{
    const hvx::Opcode store_permute = layout == EdgeLayout::Deinterleaved
                                          ? hvx::Opcode::VDealVdd
                                          : hvx::Opcode::VShuffVdd;
    const hvx::Opcode inverse = layout == EdgeLayout::Deinterleaved
                                    ? hvx::Opcode::VShuffVdd
                                    : hvx::Opcode::VDealVdd;
    if (root->op() == inverse)
        return root->arg(0); // deal(shuff(x)) == x == shuff(deal(x))
    return hvx::Instr::make(store_permute, {root}, {},
                            root->type().elem);
}

/**
 * Consumer side: reads of `buffer` now observe the permuted stored
 * value, so an existing `strip(read)` (the permute the stored layout
 * pre-applies) collapses to the bare read, and a bare read gains the
 * inverse `wrap` to recover the semantic value.
 */
hvx::InstrPtr
compensate_consumer(
    const hvx::InstrPtr &n, int buffer, hvx::Opcode strip,
    hvx::Opcode wrap,
    std::unordered_map<const hvx::Instr *, hvx::InstrPtr> *memo)
{
    auto it = memo->find(n.get());
    if (it != memo->end())
        return it->second;
    hvx::InstrPtr out = n;
    if (n->op() == strip && n->num_args() == 1 &&
        n->arg(0)->op() == hvx::Opcode::VRead &&
        n->arg(0)->load_ref().buffer == buffer) {
        out = n->arg(0);
    } else if (n->op() == hvx::Opcode::VRead &&
               n->load_ref().buffer == buffer) {
        out = hvx::Instr::make(wrap, {n}, {}, n->type().elem);
    } else if (n->num_args() > 0) {
        std::vector<hvx::InstrPtr> args;
        args.reserve(n->args().size());
        bool changed = false;
        for (const auto &a : n->args()) {
            args.push_back(
                compensate_consumer(a, buffer, strip, wrap, memo));
            changed |= args.back() != a;
        }
        if (changed)
            out = hvx::Instr::make(n->op(), std::move(args), n->imms(),
                                   n->type().elem);
    }
    memo->emplace(n.get(), out);
    return out;
}

/** Every read of `buffer` is whole-row (dx == 0) with even lanes. */
bool
reads_relayoutable(const hvx::InstrPtr &n, int buffer,
                   std::unordered_set<const hvx::Instr *> *visited)
{
    if (!visited->insert(n.get()).second)
        return true;
    if (n->op() == hvx::Opcode::VRead &&
        n->load_ref().buffer == buffer &&
        (n->load_ref().dx != 0 || n->type().lanes % 2 != 0))
        return false;
    for (const auto &a : n->args())
        if (!reads_relayoutable(a, buffer, visited))
            return false;
    return true;
}

/**
 * Permutes adjacent to stage boundaries: a permute directly over an
 * intermediate-buffer read, or a producer whose stored root is a
 * permute. Counted over the deduplicated (linearized) programs.
 */
int
count_boundary_swizzles(const std::vector<hvx::InstrPtr> &programs,
                        const std::vector<StageProgram> &stages,
                        const std::vector<bool> &is_producer)
{
    int count = 0;
    for (size_t i = 0; i < programs.size(); ++i) {
        for (const hvx::InstrPtr &n : sim::linearize(programs[i]))
            if (is_boundary_permute(n->op()) && n->num_args() == 1 &&
                n->arg(0)->op() == hvx::Opcode::VRead &&
                stages[i].producers.count(
                    n->arg(0)->load_ref().buffer) > 0)
                ++count;
        if (is_producer[i] && is_boundary_permute(programs[i]->op()))
            ++count;
    }
    return count;
}

} // namespace

NegotiationResult
negotiate_layouts(const std::vector<StageProgram> &stages,
                  const hvx::Target &target,
                  const sim::MachineModel &machine)
{
    const int n = static_cast<int>(stages.size());
    NegotiationResult result;
    result.layouts.assign(n, EdgeLayout::Natural);
    result.programs.reserve(stages.size());
    for (const StageProgram &s : stages) {
        RAKE_CHECK(s.instr != nullptr, "negotiate_layouts null program");
        result.programs.push_back(s.instr);
    }

    // Consumers per producer, with the buffer id each consumer uses
    // for that edge (consumers address producers through their own
    // slot space, so the id is per consumer).
    std::vector<std::vector<std::pair<int, int>>> consumers(n);
    std::vector<bool> is_producer(n, false);
    for (int c = 0; c < n; ++c)
        for (const auto &[buf, p] : stages[c].producers) {
            RAKE_CHECK(p >= 0 && p < c,
                       "negotiate_layouts stages not topological");
            consumers[p].emplace_back(c, buf);
            is_producer[p] = true;
        }

    const int natural_swizzles =
        count_boundary_swizzles(result.programs, stages, is_producer);

    auto cycles_of = [&](int i, const hvx::InstrPtr &prog) {
        return sim::schedule(prog, target, machine)
            .cycles(stages[i].iterations);
    };

    for (int p = 0; p < n; ++p) {
        if (consumers[p].empty())
            continue;
        bool feasible = result.programs[p]->type().lanes % 2 == 0;
        for (const auto &[c, buf] : consumers[p]) {
            std::unordered_set<const hvx::Instr *> visited;
            feasible = feasible && reads_relayoutable(result.programs[c],
                                                      buf, &visited);
        }
        if (!feasible)
            continue;

        // Candidates are always built from the pre-edge programs so
        // the two non-natural layouts don't stack on one another.
        const hvx::InstrPtr base_producer = result.programs[p];
        std::map<int, hvx::InstrPtr> base_consumer;
        for (const auto &[c, buf] : consumers[p])
            base_consumer.emplace(c, result.programs[c]);

        int64_t best_cost = cycles_of(p, base_producer);
        for (const auto &[c, prog] : base_consumer)
            best_cost += cycles_of(c, prog);

        for (EdgeLayout layout : {EdgeLayout::Interleaved,
                                  EdgeLayout::Deinterleaved}) {
            const hvx::Opcode strip =
                layout == EdgeLayout::Deinterleaved
                    ? hvx::Opcode::VDealVdd
                    : hvx::Opcode::VShuffVdd;
            const hvx::Opcode wrap =
                layout == EdgeLayout::Deinterleaved
                    ? hvx::Opcode::VShuffVdd
                    : hvx::Opcode::VDealVdd;
            const hvx::InstrPtr producer =
                transform_producer(base_producer, layout);
            std::map<int, hvx::InstrPtr> cand = base_consumer;
            for (const auto &[c, buf] : consumers[p]) {
                std::unordered_map<const hvx::Instr *, hvx::InstrPtr>
                    memo;
                cand[c] = compensate_consumer(cand[c], buf, strip,
                                              wrap, &memo);
            }
            int64_t cost = cycles_of(p, producer);
            for (const auto &[c, cons] : cand)
                cost += cycles_of(c, cons);
            // Strict improvement only: ties keep the natural layout,
            // making the negotiation deterministic.
            if (cost < best_cost) {
                best_cost = cost;
                result.layouts[p] = layout;
                result.programs[p] = producer;
                for (auto &[c, cons] : cand)
                    result.programs[c] = cons;
            }
        }
    }

    result.boundary_swizzles =
        count_boundary_swizzles(result.programs, stages, is_producer);
    result.boundary_swizzles_saved =
        natural_swizzles - result.boundary_swizzles;
    return result;
}

} // namespace rake::synth
