#include "synth/lift.h"

#include <algorithm>
#include <unordered_map>

#include "base/arith.h"
#include "hir/analysis.h"
#include "hir/interp.h"
#include "support/error.h"
#include "uir/interp.h"

namespace rake::synth {

namespace {

using hir::ExprPtr;
using uir::UExpr;
using uir::UExprPtr;
using uir::UOp;
using uir::UParams;

/** One additive term of a vs-mpy-add: a vector times a weight. */
struct Term {
    UExprPtr vec;
    int64_t weight;
};

/**
 * Decompose a lifted expression into vs-mpy-add terms.
 *
 * Widen nodes are stripped (value-preserving on int64 carriers), and
 * existing non-saturating vs-mpy-adds are flattened so kernels merge.
 */
std::vector<Term>
decompose_terms(const UExprPtr &u)
{
    if (u->op() == UOp::Widen)
        return {{u->arg(0), 1}};
    if (u->op() == UOp::VsMpyAdd && !u->params().saturate) {
        std::vector<Term> terms;
        for (int i = 0; i < u->num_args(); ++i)
            terms.push_back({u->arg(i), u->params().kernel[i]});
        return terms;
    }
    return {{u, 1}};
}

UExprPtr
make_vs_mpy_add(std::vector<Term> terms, ScalarType out, bool saturate)
{
    std::vector<UExprPtr> args;
    UParams p;
    p.out_elem = out;
    p.saturate = saturate;
    for (Term &t : terms) {
        args.push_back(std::move(t.vec));
        p.kernel.push_back(t.weight);
    }
    return UExpr::make(UOp::VsMpyAdd, std::move(args), std::move(p));
}

/** A constant-1 vector leaf matching the lane count of `like`. */
UExprPtr
const_one_like(const UExprPtr &like)
{
    return UExpr::make_leaf(hir::Expr::make_const(
        1, VecType(like->type().elem, like->type().lanes)));
}

/** If u is a broadcast constant leaf, yield its value. */
bool
as_const_leaf(const UExprPtr &u, int64_t *v)
{
    if (u->op() != UOp::HirLeaf)
        return false;
    return hir::as_const(u->leaf(), v);
}

class Lifter
{
  public:
    explicit Lifter(Verifier &verifier) : verifier_(verifier) {}

    UExprPtr
    lift(const ExprPtr &e)
    {
        auto it = memo_.find(e.get());
        if (it != memo_.end())
            return it->second;
        UExprPtr u = lift_impl(e);
        RAKE_CHECK(u != nullptr, "lifting failed for a "
                                     << hir::to_string(e->op()) << " node");
        RAKE_CHECK(u->type() == e->type(),
                   "lifted type " << to_string(u->type()) << " != "
                                  << to_string(e->type()));
        memo_.emplace(e.get(), u);
        return u;
    }

    LiftStats &stats() { return stats_; }

  private:
    /** Equivalence query against the HIR node (one synthesis query). */
    bool
    accept(const ExprPtr &e, const UExprPtr &cand, QueryStats &qs)
    {
        if (!cand || !(cand->type() == e->type()))
            return false;
        // Persistent interpreter contexts: reference outputs are
        // cached per HIR node, so across the candidate list for one
        // node the reference runs once per example.
        EvaluatorRef ref = [this, &e](const Env &env) -> const Value & {
            href_.reset(env);
            return href_.eval(e);
        };
        EvaluatorRef c = [this, &cand](const Env &env) -> const Value & {
            ucand_.reset(env);
            return ucand_.eval(cand);
        };
        return verifier_.check_ref(RefKey{e.get(), 0}, ref, c, qs);
    }

    /** Try a list of candidates under one rule's stats bucket. */
    UExprPtr
    first_verified(const ExprPtr &e, const std::vector<UExprPtr> &cands,
                   QueryStats &qs)
    {
        // Candidate generation between queries is cheap but not free;
        // poll here too so lifting honors the deadline even when a
        // rule emits no verifiable candidates.
        verifier_.options().deadline.check("lifting");
        for (const UExprPtr &c : cands) {
            if (accept(e, c, qs))
                return c;
        }
        return nullptr;
    }

    UExprPtr
    lift_impl(const ExprPtr &e)
    {
        using hir::Op;
        // Trivial expressions stay as leaves — Rake assumes LLVM
        // handles them (paper §7).
        switch (e->op()) {
          case Op::Load:
          case Op::Const:
          case Op::Var:
          case Op::Broadcast:
            return UExpr::make_leaf(e);
          default:
            break;
        }

        std::vector<UExprPtr> S;
        S.reserve(e->num_args());
        for (const auto &a : e->args())
            S.push_back(lift(a));

        if (UExprPtr u = first_verified(e, gen_update(e, S),
                                        stats_.update))
            return u;
        if (UExprPtr u = first_verified(e, gen_replace(e, S),
                                        stats_.replace))
            return u;
        return first_verified(e, gen_extend(e, S), stats_.extend);
    }

    // --- candidate generators ---------------------------------------

    /** Push a candidate, swallowing type errors from illegal combos. */
    template <typename F>
    static void
    try_cand(std::vector<UExprPtr> &out, F &&build)
    {
        try {
            UExprPtr u = build();
            if (u)
                out.push_back(std::move(u));
        } catch (const UserError &) {
            // Ill-typed candidate; skip.
        }
    }

    std::vector<UExprPtr>
    gen_update(const ExprPtr &e, const std::vector<UExprPtr> &S)
    {
        using hir::Op;
        std::vector<UExprPtr> cands;
        const ScalarType out = e->type().elem;

        switch (e->op()) {
          case Op::Add:
          case Op::Sub: {
            const int64_t sign = e->op() == Op::Sub ? -1 : 1;
            // Fold the other operand's terms into an existing
            // vs-mpy-add (kernel growth, Fig. 9 steps 6-7).
            for (int c = 0; c < 2; ++c) {
                if (S[c]->op() != UOp::VsMpyAdd &&
                    S[c]->op() != UOp::VvMpyAdd)
                    continue;
                const int64_t w_self = c == 1 ? sign : 1;
                const int64_t w_other = c == 1 ? 1 : sign;
                if (S[c]->op() == UOp::VsMpyAdd &&
                    !S[c]->params().saturate && w_self == 1) {
                    try_cand(cands, [&] {
                        std::vector<Term> terms = decompose_terms(S[c]);
                        for (Term t : decompose_terms(S[1 - c])) {
                            t.weight *= w_other;
                            terms.push_back(t);
                        }
                        return make_vs_mpy_add(std::move(terms), out,
                                               false);
                    });
                }
                int64_t cv = 0;
                if (S[c]->op() == UOp::VvMpyAdd &&
                    !S[c]->params().saturate && w_self == 1 &&
                    w_other == 1 && !as_const_leaf(S[1 - c], &cv)) {
                    // Append the other operand as (x, 1) pair
                    // (constants stay outside so rounding/bias
                    // detection can still see them).
                    try_cand(cands, [&] {
                        std::vector<UExprPtr> args = S[c]->args();
                        UExprPtr o = S[1 - c];
                        if (o->op() == UOp::Widen)
                            o = o->arg(0);
                        args.push_back(o);
                        args.push_back(const_one_like(o));
                        UParams p = S[c]->params();
                        p.out_elem = out;
                        return UExpr::make(UOp::VvMpyAdd,
                                           std::move(args), p);
                    });
                }
            }
            break;
          }
          case Op::Mul: {
            // Scale an existing kernel by a broadcast constant.
            for (int c = 0; c < 2; ++c) {
                int64_t k = 0;
                if (!as_const_leaf(S[1 - c], &k))
                    continue;
                if (S[c]->op() == UOp::VsMpyAdd &&
                    !S[c]->params().saturate) {
                    try_cand(cands, [&] {
                        std::vector<Term> terms = decompose_terms(S[c]);
                        for (Term &t : terms)
                            t.weight *= k;
                        return make_vs_mpy_add(std::move(terms), out,
                                               false);
                    });
                }
            }
            break;
          }
          case Op::ShiftLeft: {
            // Fold a constant left shift into multiply weights.
            int64_t n = 0;
            if (hir::as_const(e->arg(1), &n) && n >= 0 && n < 32) {
                const int64_t k = int64_t{1} << n;
                if (S[0]->op() == UOp::VsMpyAdd &&
                    !S[0]->params().saturate) {
                    try_cand(cands, [&] {
                        std::vector<Term> terms = decompose_terms(S[0]);
                        for (Term &t : terms)
                            t.weight *= k;
                        return make_vs_mpy_add(std::move(terms), out,
                                               false);
                    });
                }
                if (S[0]->op() == UOp::Widen) {
                    try_cand(cands, [&] {
                        return make_vs_mpy_add({{S[0]->arg(0), k}}, out,
                                               false);
                    });
                }
            }
            break;
          }
          case Op::ShiftRight: {
            // Absorb an additive rounding constant: (x + 2^(n-1)) >> n
            // becomes a rounding shift (update round? flag).
            int64_t n = 0;
            if (hir::as_const(e->arg(1), &n) && n > 0 && n < 63 &&
                S[0]->op() == UOp::VsMpyAdd &&
                !S[0]->params().saturate) {
                try_cand(cands, [&] {
                    std::vector<Term> terms = decompose_terms(S[0]);
                    UExprPtr inner = strip_rounding_term(terms, n);
                    if (!inner && terms.size() == 1 &&
                        terms[0].weight == 1)
                        inner = terms[0].vec;
                    if (!inner)
                        return UExprPtr();
                    UParams p;
                    p.round = true;
                    return UExpr::make(
                        UOp::ShiftRight,
                        {lift_to_type(inner, e->arg(0)->type()),
                         lift(e->arg(1))},
                        p);
                });
            }
            break;
          }
          case Op::Cast:
          case Op::Min:
          case Op::Max:
            gen_narrow_candidates(e, S, cands);
            break;
          default:
            break;
        }
        return cands;
    }

    /**
     * Remove the term equal to broadcast(2^(n-1)) with weight 1 from
     * a term list; returns the remaining expression or null.
     */
    UExprPtr
    strip_rounding_term(std::vector<Term> &terms, int64_t n)
    {
        const int64_t half = int64_t{1} << (n - 1);
        for (size_t i = 0; i < terms.size(); ++i) {
            int64_t v = 0;
            if (terms[i].weight == 1 && as_const_leaf(terms[i].vec, &v) &&
                v == half) {
                std::vector<Term> rest;
                for (size_t j = 0; j < terms.size(); ++j) {
                    if (j != i)
                        rest.push_back(terms[j]);
                }
                if (rest.empty())
                    return nullptr;
                if (rest.size() == 1 && rest[0].weight == 1)
                    return rest[0].vec;
                try {
                    // Keep the carrier type of the original sum.
                    return make_vs_mpy_add(std::move(rest),
                                           terms[i].vec->type().elem,
                                           false);
                } catch (const UserError &) {
                    return nullptr;
                }
            }
        }
        return nullptr;
    }

    /** Coerce a term expression back to a target type via widen. */
    UExprPtr
    lift_to_type(const UExprPtr &u, const VecType &t)
    {
        if (u->type() == t)
            return u;
        if (bits(t.elem) >= bits(u->type().elem)) {
            UParams p;
            p.out_elem = t.elem;
            return UExpr::make(UOp::Widen, {u}, p);
        }
        return u;
    }

    /**
     * Narrow-with-saturation/rounding candidates at cast / clamp
     * sites. This is where the lifter discovers that min/max chains
     * are saturations and that additive constants are roundings —
     * semantically, not by pattern (the verifier arbitrates).
     */
    void
    gen_narrow_candidates(const ExprPtr &e, const std::vector<UExprPtr> &S,
                          std::vector<UExprPtr> &cands)
    {
        using hir::Op;
        if (e->op() != Op::Cast)
            return;
        const ScalarType out = e->type().elem;
        if (bits(out) > bits(e->arg(0)->type().elem))
            return; // widening handled by extend

        // Collect candidate inner expressions by stripping up to two
        // min/max-with-constant layers (the clamp) off the child.
        // Most-stripped first, so saturation absorbs as many clamps
        // as the semantics allow (the verifier rejects over-reach).
        std::vector<UExprPtr> inners;
        UExprPtr cur = S[0];
        inners.push_back(cur);
        for (int layer = 0; layer < 2; ++layer) {
            if ((cur->op() != UOp::Min && cur->op() != UOp::Max) ||
                cur->num_args() != 2)
                break;
            int64_t c = 0;
            if (as_const_leaf(cur->arg(1), &c))
                cur = cur->arg(0);
            else if (as_const_leaf(cur->arg(0), &c))
                cur = cur->arg(1);
            else
                break;
            inners.push_back(cur);
        }
        std::reverse(inners.begin(), inners.end());

        for (const UExprPtr &inner : inners) {
            // Averaging narrow first: u8((u16(a) + u16(b) [+1]) >> 1)
            // stays entirely at the narrow width (vavg), so it must
            // outrank the widening shift-narrow forms.
            if (inner->op() == UOp::ShiftRight) {
                int64_t n1 = 0;
                if (as_const_leaf(inner->arg(1), &n1) && n1 == 1 &&
                    inner->arg(0)->op() == UOp::VsMpyAdd) {
                    gen_average_candidates(inner->arg(0),
                                           inner->params().round, out,
                                           cands);
                }
            }
            // Narrow fused with a shift: inner = y >> n. Tried before
            // the plain narrow so fused vasr-narrow forms win.
            if (inner->op() == UOp::ShiftRight) {
                int64_t n = 0;
                if (as_const_leaf(inner->arg(1), &n) && n >= 0 &&
                    n < 63) {
                    for (bool sat : {true, false}) {
                        try_cand(cands, [&] {
                            UParams p;
                            p.out_elem = out;
                            p.shift = static_cast<int>(n);
                            p.round = inner->params().round;
                            p.saturate = sat;
                            return UExpr::make(UOp::Narrow,
                                               {inner->arg(0)}, p);
                        });
                    }
                    // Rounding variant: strip an embedded +2^(n-1).
                    if (!inner->params().round &&
                        inner->arg(0)->op() == UOp::VsMpyAdd) {
                        std::vector<Term> terms =
                            decompose_terms(inner->arg(0));
                        UExprPtr y = strip_rounding_term(terms, n);
                        if (y) {
                            for (bool sat : {true, false}) {
                                try_cand(cands, [&] {
                                    UParams p;
                                    p.out_elem = out;
                                    p.shift = static_cast<int>(n);
                                    p.round = true;
                                    p.saturate = sat;
                                    return UExpr::make(
                                        UOp::Narrow,
                                        {lift_to_type(
                                            y,
                                            inner->arg(0)->type())},
                                        p);
                                });
                            }
                        }
                    }
                }
            }
            // Plain saturating narrow of the (possibly de-clamped)
            // inner value.
            try_cand(cands, [&] {
                UParams p;
                p.out_elem = out;
                p.saturate = true;
                return UExpr::make(UOp::Narrow, {inner}, p);
            });
        }
    }

    void
    gen_average_candidates(const UExprPtr &sum, bool pre_rounded,
                           ScalarType out, std::vector<UExprPtr> &cands)
    {
        std::vector<Term> terms = decompose_terms(sum);
        // Look for exactly two unit-weight vector terms, optionally
        // plus a constant 1 (the rounding).
        std::vector<UExprPtr> vecs;
        bool round = pre_rounded;
        for (const Term &t : terms) {
            int64_t c = 0;
            if (t.weight == 1 && as_const_leaf(t.vec, &c) && c == 1) {
                round = true;
                continue;
            }
            if (t.weight != 1)
                return;
            vecs.push_back(t.vec);
        }
        if (vecs.size() != 2)
            return;
        try_cand(cands, [&] {
            if (vecs[0]->type().elem != out ||
                vecs[1]->type().elem != out)
                return UExprPtr();
            UParams p;
            p.round = round;
            return UExpr::make(UOp::Average, {vecs[0], vecs[1]}, p);
        });
    }

    std::vector<UExprPtr>
    gen_replace(const ExprPtr &e, const std::vector<UExprPtr> &S)
    {
        using hir::Op;
        std::vector<UExprPtr> cands;
        const ScalarType out = e->type().elem;

        switch (e->op()) {
          case Op::Mul: {
            // widen(x) * broadcast(c)  ->  vs-mpy-add(x, '(c))
            // (Fig. 9, step 5).
            for (int c = 0; c < 2; ++c) {
                int64_t k = 0;
                if (!as_const_leaf(S[1 - c], &k))
                    continue;
                try_cand(cands, [&] {
                    std::vector<Term> terms = decompose_terms(S[c]);
                    for (Term &t : terms)
                        t.weight *= k;
                    return make_vs_mpy_add(std::move(terms), out, false);
                });
            }
            // General vector-vector multiply.
            try_cand(cands, [&] {
                UExprPtr a = S[0], b = S[1];
                if (a->op() == UOp::Widen)
                    a = a->arg(0);
                if (b->op() == UOp::Widen)
                    b = b->arg(0);
                UParams p;
                p.out_elem = out;
                return UExpr::make(UOp::VvMpyAdd, {a, b}, p);
            });
            break;
          }
          case Op::Add:
          case Op::Sub: {
            const int64_t sign = e->op() == Op::Sub ? -1 : 1;
            // Merge both operands' terms into a fresh vs-mpy-add.
            try_cand(cands, [&] {
                std::vector<Term> terms = decompose_terms(S[0]);
                for (Term t : decompose_terms(S[1])) {
                    t.weight *= sign;
                    terms.push_back(t);
                }
                return make_vs_mpy_add(std::move(terms), out, false);
            });
            break;
          }
          default:
            break;
        }
        return cands;
    }

    std::vector<UExprPtr>
    gen_extend(const ExprPtr &e, const std::vector<UExprPtr> &S)
    {
        using hir::Op;
        std::vector<UExprPtr> cands;
        const ScalarType out = e->type().elem;

        auto unary = [&](UOp op, UParams p = {}) {
            try_cand(cands, [&] { return UExpr::make(op, {S[0]}, p); });
        };
        auto binary = [&](UOp op, UParams p = {}) {
            try_cand(cands,
                     [&] { return UExpr::make(op, {S[0], S[1]}, p); });
        };

        switch (e->op()) {
          case Op::Cast: {
            UParams p;
            p.out_elem = out;
            if (bits(out) >= bits(e->arg(0)->type().elem)) {
                unary(UOp::Widen, p);
            } else {
                unary(UOp::Narrow, p);
            }
            // Same-width casts (signedness changes) express as a
            // non-saturating narrow.
            if (bits(out) == bits(e->arg(0)->type().elem))
                unary(UOp::Narrow, p);
            break;
          }
          case Op::Add:
            try_cand(cands, [&] {
                return make_vs_mpy_add({{S[0], 1}, {S[1], 1}}, out,
                                       false);
            });
            break;
          case Op::Sub:
            try_cand(cands, [&] {
                return make_vs_mpy_add({{S[0], 1}, {S[1], -1}}, out,
                                       false);
            });
            break;
          case Op::Mul: {
            int64_t k = 0;
            if (as_const_leaf(S[1], &k)) {
                try_cand(cands, [&] {
                    return make_vs_mpy_add({{S[0], k}}, out, false);
                });
            } else if (as_const_leaf(S[0], &k)) {
                try_cand(cands, [&] {
                    return make_vs_mpy_add({{S[1], k}}, out, false);
                });
            }
            try_cand(cands, [&] {
                UParams p;
                p.out_elem = out;
                return UExpr::make(UOp::VvMpyAdd, {S[0], S[1]}, p);
            });
            break;
          }
          case Op::Min:
            binary(UOp::Min);
            break;
          case Op::Max:
            binary(UOp::Max);
            break;
          case Op::AbsDiff:
            binary(UOp::AbsDiff);
            break;
          case Op::ShiftLeft:
            binary(UOp::ShiftLeft);
            break;
          case Op::ShiftRight:
            binary(UOp::ShiftRight);
            break;
          case Op::And:
            binary(UOp::And);
            break;
          case Op::Or:
            binary(UOp::Or);
            break;
          case Op::Xor:
            binary(UOp::Xor);
            break;
          case Op::Not:
            unary(UOp::Not);
            break;
          case Op::Lt:
            binary(UOp::Lt);
            break;
          case Op::Le:
            binary(UOp::Le);
            break;
          case Op::Eq:
            binary(UOp::Eq);
            break;
          case Op::Select:
            try_cand(cands, [&] {
                return UExpr::make(UOp::Select, {S[0], S[1], S[2]}, {});
            });
            break;
          default:
            RAKE_UNREACHABLE("no extend rule for "
                             << hir::to_string(e->op()));
        }
        return cands;
    }

    Verifier &verifier_;
    LiftStats stats_;
    std::unordered_map<const hir::Expr *, UExprPtr> memo_;
    hir::Interpreter href_; ///< reference context for accept()
    uir::Interpreter ucand_;///< candidate context for accept()
};

} // namespace

LiftResult
lift_to_uir(Verifier &verifier)
{
    Lifter lifter(verifier);
    LiftResult result;
    result.expr = lifter.lift(verifier.spec().expr);
    result.stats = lifter.stats();
    return result;
}

} // namespace rake::synth
