#include "synth/sketch.h"

#include <set>
#include <unordered_map>

#include "support/error.h"

namespace rake::synth {

namespace {

hvx::InstrPtr
substitute(const hvx::InstrPtr &n,
           const std::vector<hvx::InstrPtr> &solutions,
           std::unordered_map<const hvx::Instr *, hvx::InstrPtr> &memo)
{
    auto it = memo.find(n.get());
    if (it != memo.end())
        return it->second;

    hvx::InstrPtr result;
    if (n->op() == hvx::Opcode::Hole) {
        const int id = n->hole_id();
        RAKE_CHECK(id >= 0 && id < static_cast<int>(solutions.size()) &&
                       solutions[id] != nullptr,
                   "missing swizzle solution for hole " << id);
        RAKE_CHECK(solutions[id]->type() == n->type(),
                   "swizzle solution type mismatch for hole "
                       << id << ": " << to_string(solutions[id]->type())
                       << " vs " << to_string(n->type()));
        // A solution may pass through a source subtree that itself
        // contains earlier holes (a ??swizzle over sketch values);
        // keep substituting inside it.
        result = substitute(solutions[id], solutions, memo);
    } else if (n->num_args() == 0) {
        result = n;
    } else {
        std::vector<hvx::InstrPtr> args;
        bool changed = false;
        for (const auto &a : n->args()) {
            args.push_back(substitute(a, solutions, memo));
            changed |= args.back() != a;
        }
        result = changed ? hvx::Instr::make(n->op(), std::move(args),
                                            n->imms(), n->type().elem)
                         : n;
    }
    memo.emplace(n.get(), result);
    return result;
}

void
collect_holes(const hvx::InstrPtr &n, std::set<int> &ids)
{
    if (n->op() == hvx::Opcode::Hole)
        ids.insert(n->hole_id());
    for (const auto &a : n->args())
        collect_holes(a, ids);
}

} // namespace

hvx::InstrPtr
substitute_holes(const hvx::InstrPtr &root,
                 const std::vector<hvx::InstrPtr> &solutions)
{
    RAKE_CHECK(root != nullptr, "substitute on null sketch");
    std::unordered_map<const hvx::Instr *, hvx::InstrPtr> memo;
    return substitute(root, solutions, memo);
}

std::vector<int>
holes_in(const hvx::InstrPtr &root)
{
    std::set<int> ids;
    collect_holes(root, ids);
    return std::vector<int>(ids.begin(), ids.end());
}

} // namespace rake::synth
