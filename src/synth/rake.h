/**
 * @file
 * The top-level Rake instruction selector: lift to Uber-Instruction
 * IR, lower to HVX, optionally prove the result with z3.
 *
 * This is the public entry point a compiler embeds (Fig. 1): hand it
 * one vectorized HIR expression, get back a verified HVX instruction
 * DAG plus the per-stage synthesis statistics reported in Table 1.
 */
#ifndef RAKE_SYNTH_RAKE_H
#define RAKE_SYNTH_RAKE_H

#include <optional>

#include "synth/lift.h"
#include "synth/lower.h"
#include "synth/z3_verify.h"

namespace rake::synth {

/** Configuration of one Rake run. */
struct RakeOptions {
    hvx::Target target;
    LowerOptions lower;
    VerifierOptions verifier;
    bool z3_prove = false;  ///< final SMT proof of the selected code
    uint64_t seed = 1;      ///< example-pool seed
    bool use_cache = true;  ///< consult the cross-expression cache
};

/** Everything a Rake run produces. */
struct RakeResult {
    hvx::InstrPtr instr;        ///< selected HVX implementation
    uir::UExprPtr lifted;       ///< intermediate Uber-Instruction IR
    LiftStats lift;             ///< Table 1: lifting columns
    LowerStats lower;           ///< Table 1: sketch + swizzle columns
    ProofResult proof = ProofResult::Unknown; ///< z3 outcome if asked

    /**
     * True when this result was answered from the cross-expression
     * synthesis cache. The stage statistics above are then those of
     * the original (deterministic) synthesis, so Table 1 aggregates
     * stay bit-identical whether or not a run was cached.
     */
    bool cache_hit = false;
};

/**
 * Run instruction selection on one vector expression. Returns
 * nullopt when Rake cannot produce a verified implementation (the
 * caller should fall back to its default selector).
 */
std::optional<RakeResult> select_instructions(const hir::ExprPtr &expr,
                                              const RakeOptions &opts
                                              = {});

/**
 * A backend-parameterized run: the same lift + lower stages, with
 * the selected implementation type-erased behind the backend's
 * instruction handle.
 */
struct BackendRakeResult {
    backend::InstrHandle instr;  ///< selected implementation
    uir::UExprPtr lifted;        ///< intermediate Uber-Instruction IR
    LiftStats lift;              ///< Table 1: lifting columns
    LowerStats lower;            ///< Table 1: sketch + swizzle columns

    /** See RakeResult::cache_hit. */
    bool cache_hit = false;
};

/**
 * Instruction selection through an explicit target backend: lift with
 * the shared stage, lower through the backend's sketch grammar,
 * swizzle repertoire, and cost model. `isa` carries per-run state and
 * must outlive the call.
 *
 * Two RakeOptions fields do not apply here: `target` (the backend
 * brings its own machine model) and `z3_prove` (the SMT encoding is
 * HVX-typed; generic results are verified by CEGIS only). Both are
 * ignored. Results are cached per TargetISA::name().
 */
std::optional<BackendRakeResult>
select_instructions_for(const hir::ExprPtr &expr, backend::TargetISA &isa,
                        const RakeOptions &opts = {});

} // namespace rake::synth

#endif // RAKE_SYNTH_RAKE_H
