/**
 * @file
 * The top-level Rake instruction selector: lift to Uber-Instruction
 * IR, lower to HVX, optionally prove the result with z3.
 *
 * This is the public entry point a compiler embeds (Fig. 1): hand it
 * one vectorized HIR expression, get back a verified HVX instruction
 * DAG plus the per-stage synthesis statistics reported in Table 1.
 */
#ifndef RAKE_SYNTH_RAKE_H
#define RAKE_SYNTH_RAKE_H

#include <optional>

#include "support/deadline.h"
#include "synth/lift.h"
#include "synth/lower.h"
#include "synth/z3_verify.h"

namespace rake::synth {

/**
 * Structured outcome of one selection query (the timeout taxonomy).
 * `Error` is reserved for the embedder catching a non-timeout
 * exception at its own boundary; the entry points here either return
 * one of the first three or propagate the exception.
 */
enum class SynthStatus {
    Ok,         ///< verified implementation within every budget
    NoSolution, ///< search exhausted: no implementation exists within
                ///< the cost budgets (deterministic, cacheable)
    TimedOut,   ///< aborted by the wall-clock deadline (never cached)
    Error,      ///< synthesis raised a non-timeout error
};

const char *to_string(SynthStatus status);

/** Configuration of one Rake run. */
struct RakeOptions {
    hvx::Target target;
    LowerOptions lower;
    VerifierOptions verifier;
    bool z3_prove = false;  ///< final SMT proof of the selected code
    uint64_t seed = 1;      ///< example-pool seed
    bool use_cache = true;  ///< consult the cross-expression cache

    /**
     * Wall-clock budget for this query. Combined (sooner wins) into
     * the verifier and lowering deadlines, so one knob bounds every
     * stage. On expiry select_instructions* returns a degraded
     * result (status = TimedOut, instr = the greedy baseline's
     * program) instead of hanging or throwing. Excluded from the
     * cache fingerprint: a deadline aborts runs, it never changes a
     * completed run's answer, so completed results are shared across
     * budgets.
     */
    Deadline deadline;

    /**
     * Directory of the persistent (on-disk) cache tier; "" disables
     * it (see synth/persist.h). Consulted on an in-memory miss before
     * CEGIS runs, written after each completed synthesis. Like the
     * deadline, excluded from the cache fingerprint: where a result
     * is stored never changes what the result is. CLIs resolve this
     * knob with resolve_cache_dir() (--cache-dir, then
     * RAKE_CACHE_DIR).
     */
    std::string cache_dir;

    /**
     * Path of a mined rewrite-rule table (synth/rules.h); "" disables
     * the rule-first stage. On a memory-tier and disk-tier miss the
     * table is consulted before sketch enumeration + CEGIS: a
     * structural match instantiates the rule's holes, re-checks the
     * instantiation against the reference interpreter on this query's
     * examples, and publishes into both cache tiers like any other
     * completed result. Like the deadline and cache_dir, excluded
     * from the cache fingerprint — every shipped rule is
     * verifier-proven equivalent, so where an answer comes from does
     * not change the key. CLIs resolve this knob with
     * resolve_rules_file() (--rules / --no-rules, then RAKE_RULES).
     */
    std::string rules_file;
};

/** Everything a Rake run produces. */
struct RakeResult {
    hvx::InstrPtr instr;        ///< selected HVX implementation
    uir::UExprPtr lifted;       ///< intermediate Uber-Instruction IR
    LiftStats lift;             ///< Table 1: lifting columns
    LowerStats lower;           ///< Table 1: sketch + swizzle columns
    ProofResult proof = ProofResult::Unknown; ///< z3 outcome if asked

    /**
     * True when this result was answered from the cross-expression
     * synthesis cache. The stage statistics above are then those of
     * the original (deterministic) synthesis, so Table 1 aggregates
     * stay bit-identical whether or not a run was cached.
     */
    bool cache_hit = false;

    /**
     * True when this result was answered from the persistent on-disk
     * tier (a prior process's completed synthesis). `lifted` is null
     * on disk hits — the UIR intermediate is not persisted.
     */
    bool disk_hit = false;

    /**
     * True when this result came from the rule-first stage: a mined,
     * verifier-proven rewrite rule matched the query and its
     * instantiation passed the per-instance example re-check. The
     * stage statistics are all zero — no CEGIS query ran. `lifted`
     * is null, like a disk hit.
     */
    bool rule_hit = false;

    /**
     * Matching rule instantiations rejected by the per-instance
     * example re-check before this result was produced (whether it
     * then came from another rule or fell through to synthesis).
     */
    int rule_rejects = 0;

    SynthStatus status = SynthStatus::Ok;

    /**
     * True when the deadline expired and `instr` is the greedy
     * baseline's program rather than a synthesized one. The stage
     * statistics are those of the aborted search; degraded results
     * are never stored in the cross-expression cache.
     */
    bool degraded = false;
};

/**
 * Run instruction selection on one vector expression. Returns
 * nullopt when Rake cannot produce a verified implementation (the
 * caller should fall back to its default selector). When
 * opts.deadline expires mid-search the call instead returns a
 * *degraded* result: status = TimedOut and the greedy baseline's
 * program as `instr`, so the pipeline always has something runnable.
 */
std::optional<RakeResult> select_instructions(const hir::ExprPtr &expr,
                                              const RakeOptions &opts
                                              = {});

/**
 * A backend-parameterized run: the same lift + lower stages, with
 * the selected implementation type-erased behind the backend's
 * instruction handle.
 */
struct BackendRakeResult {
    backend::InstrHandle instr;  ///< selected implementation
    uir::UExprPtr lifted;        ///< intermediate Uber-Instruction IR
    LiftStats lift;              ///< Table 1: lifting columns
    LowerStats lower;            ///< Table 1: sketch + swizzle columns

    /** See RakeResult::cache_hit. */
    bool cache_hit = false;

    /** See RakeResult::disk_hit. */
    bool disk_hit = false;

    /** See RakeResult::rule_hit / RakeResult::rule_rejects. */
    bool rule_hit = false;
    int rule_rejects = 0;

    /** See RakeResult::status / RakeResult::degraded. */
    SynthStatus status = SynthStatus::Ok;
    bool degraded = false;
};

/**
 * Instruction selection through an explicit target backend: lift with
 * the shared stage, lower through the backend's sketch grammar,
 * swizzle repertoire, and cost model. `isa` carries per-run state and
 * must outlive the call.
 *
 * Two RakeOptions fields do not apply here: `target` (the backend
 * brings its own machine model) and `z3_prove` (the SMT encoding is
 * HVX-typed; generic results are verified by CEGIS only). Both are
 * ignored. Results are cached per TargetISA::name().
 */
std::optional<BackendRakeResult>
select_instructions_for(const hir::ExprPtr &expr, backend::TargetISA &isa,
                        const RakeOptions &opts = {});

} // namespace rake::synth

#endif // RAKE_SYNTH_RAKE_H
