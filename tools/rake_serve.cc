/**
 * @file
 * The long-running compile server: synthesis-as-a-service over a
 * Unix-domain socket (serve/server.h). Many short-lived compiler
 * processes share one warm cache hierarchy — in-memory tier, disk
 * tier, mined rules, then CEGIS — and identical in-flight queries
 * from different clients are deduplicated down to a single synthesis.
 *
 *   rake_serve --socket PATH [--jobs N] [--queue-depth N]
 *              [--drain-ms N] [--cache-dir PATH] [--rules PATH]
 *              [--no-rules] [--timeout-ms N] [--seed N]
 *
 * Knobs fall back to the usual environment variables: RAKE_SOCKET,
 * RAKE_JOBS, RAKE_CACHE_DIR, RAKE_RULES, RAKE_TIMEOUT_MS (a
 * server-wide per-query cap; clients can only shorten it).
 *
 * SIGTERM/SIGINT drain gracefully: stop accepting, let in-flight
 * requests flush for up to --drain-ms, exit 0.
 */
#include <atomic>
#include <csignal>
#include <iostream>
#include <limits>
#include <string>
#include <thread>

#include "serve/server.h"
#include "support/deadline.h"
#include "support/error.h"
#include "support/parse.h"
#include "synth/persist.h"
#include "synth/rules.h"

namespace {

using namespace rake;

std::atomic<bool> g_stop{false};

void
on_signal(int)
{
    g_stop.store(true);
}

struct ServeArgs {
    serve::ServeOptions serve;
    std::string rules;
    bool no_rules = false;
    int timeout_ms = 0;
};

ServeArgs
parse_args(int argc, char **argv)
{
    ServeArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *what) {
            RAKE_USER_CHECK(i + 1 < argc, a << " needs " << what);
            return std::string(argv[++i]);
        };
        auto int_value = [&](const char *name, int64_t lo, int64_t hi) {
            return static_cast<int>(
                parse_int_knob(value("a value").c_str(), name, lo, hi));
        };
        if (a == "--socket") {
            args.serve.socket_path = value("a path");
        } else if (a == "--jobs") {
            args.serve.jobs = int_value("--jobs", 1, 1 << 16);
        } else if (a == "--queue-depth") {
            args.serve.queue_depth =
                int_value("--queue-depth", 1, 1 << 20);
        } else if (a == "--drain-ms") {
            args.serve.drain_ms = int_value("--drain-ms", 0, 1 << 30);
        } else if (a == "--cache-dir") {
            args.serve.rake.cache_dir = value("a path");
        } else if (a == "--rules") {
            args.rules = value("a path");
        } else if (a == "--no-rules") {
            args.no_rules = true;
        } else if (a == "--timeout-ms") {
            args.timeout_ms = int_value("--timeout-ms", 1,
                                        std::numeric_limits<int>::max());
        } else if (a == "--seed") {
            args.serve.rake.seed = static_cast<uint64_t>(parse_int_knob(
                value("a value").c_str(), "--seed", 0,
                std::numeric_limits<int64_t>::max()));
        } else {
            RAKE_USER_CHECK(false, "unknown flag: " << a);
        }
    }
    return args;
}

} // namespace

int
main(int argc, char **argv)
{
    ServeArgs args;
    try {
        args = parse_args(argc, argv);
        args.serve.rake.cache_dir =
            synth::resolve_cache_dir(args.serve.rake.cache_dir);
        args.serve.rake.rules_file =
            synth::resolve_rules_file(args.rules, args.no_rules);
        args.serve.timeout_cap_ms =
            resolve_timeout_ms(args.timeout_ms, "RAKE_TIMEOUT_MS");

        struct sigaction sa = {};
        sa.sa_handler = on_signal;
        sigaction(SIGTERM, &sa, nullptr);
        sigaction(SIGINT, &sa, nullptr);
        signal(SIGPIPE, SIG_IGN);

        serve::Server server(args.serve);
        std::cout << "rake_serve: listening on " << server.socket_path()
                  << " (jobs=" << resolve_jobs(args.serve.jobs)
                  << " queue-depth=" << args.serve.queue_depth
                  << ")\n"
                  << std::flush;

        while (!g_stop.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(50));

        const bool clean = server.stop();
        const synth::ServiceMetrics m = server.service().metrics();
        std::cout << "rake_serve: drained "
                  << (clean ? "cleanly" : "with abandoned work")
                  << ", served " << m.requests << " requests\n"
                  << "rake_serve: metrics " << m.to_json() << "\n";
        return 0;
    } catch (const UserError &e) {
        std::cerr << "rake_serve: " << e.what() << "\n";
        return 2;
    }
}
