/**
 * @file
 * Generative differential fuzzer CLI.
 *
 *   rake_fuzz [--seed N] [--count N] [--target hvx|neon|both|jit]
 *             [--jobs N] [--depth N] [--lanes N] [--stages N]
 *             [--envs N] [--timeout-ms N] [--no-minimize]
 *             [--corpus-dir PATH] [--rules PATH] [--inject-sub-bug]
 *             [--inject-spin] [--replay FILE|DIR] [--quiet]
 *
 * Default mode generates `count` random HIR programs from `seed` and
 * drives each through the oracle lattice (s-expression round-trip,
 * simplifier metamorphic check, HVX and/or NEON selection vs. the
 * reference interpreter, cross-backend agreement). Divergences are
 * shrunk by the delta-debugging minimizer and, with --corpus-dir,
 * persisted as reproducer files.
 *
 * --target jit arms the native tier: each HVX selection is
 * additionally jit-compiled to host x86-64 and its output must match
 * the HVX interpreter lane-for-lane (a no-op on non-x86-64 hosts, so
 * the flag is safe everywhere).
 *
 * --stages N > 1 generates N-stage pipeline programs (stage i reads
 * stage i-1 through a reserved intermediate buffer) and swaps the
 * lattice for the staged-executor oracle: the DAG executor over the
 * baseline-selected per-stage programs must equal composing the
 * stages' HIR interpreters. Multi-stage findings are reported by
 * seed, not minimized or persisted. The default (1) is byte-identical
 * to the classic single-expression stream.
 *
 * --replay runs the oracles over an existing reproducer file (or a
 * whole corpus directory) instead of generating programs.
 *
 * --replay-frames drives raw wire bytes (a file or a directory of
 * files, e.g. tests/corpus/protocol/) through the compile server's
 * frame decoder and request parser. Files named ok-* must decode to
 * valid requests; everything else must produce a structured framing
 * or protocol error. Either way the drill must return — a crash or
 * hang on hostile bytes is exactly what this gate exists to catch.
 *
 * --rules PATH arms the rules-vs-CEGIS oracle: each program is
 * selected a second time through the rule-first stage and the result
 * must agree with the rule-free selection's values.
 *
 * --inject-sub-bug enables the documented drill bug (the simplifier
 * oracle sees `a - b` flipped to `b - a`) to demonstrate the
 * find-shrink-persist pipeline end to end.
 *
 * --timeout-ms arms a per-program deadline; a program that exhausts
 * it is reported as a `hang` finding rather than wedging a worker.
 * --inject-spin (requires --timeout-ms) plants a spin loop to drill
 * exactly that attribution, the hang analogue of --inject-sub-bug.
 *
 * Exit status: 0 = no divergences, 1 = divergences found, 2 = usage.
 */
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/fuzz.h"
#include "hir/printer.h"
#include "serve/protocol.h"
#include "support/error.h"
#include "support/parse.h"

using namespace rake;

namespace {

struct Args {
    fuzz::FuzzOptions fuzz;
    std::string replay;
    std::string replay_frames;
    bool quiet = false;
};

[[noreturn]] void
usage(const std::string &msg)
{
    if (!msg.empty())
        std::cerr << "rake_fuzz: " << msg << "\n";
    std::cerr << "usage: rake_fuzz [--seed N] [--count N] "
                 "[--target hvx|neon|both|jit] [--jobs N] [--depth N] "
                 "[--lanes N] [--stages N] [--envs N] [--timeout-ms N] "
                 "[--no-minimize] [--corpus-dir PATH] "
                 "[--rules PATH] [--inject-sub-bug] [--inject-spin] "
                 "[--replay FILE|DIR] [--replay-frames FILE|DIR] "
                 "[--quiet]\n";
    std::exit(2);
}

Args
parse_args(int argc, char **argv)
{
    Args args;
    auto value = [&](int &i, const std::string &flag) -> std::string {
        if (i + 1 >= argc)
            usage(flag + " needs a value");
        return argv[++i];
    };
    // Strict parsing: a typo'd flag value is a UserError naming the
    // flag and its range, never a silent 0 (parse.h has the history).
    auto int_value = [&](int &i, const std::string &flag, int64_t min,
                         int64_t max) {
        return parse_int_knob(value(i, flag), flag.c_str(), min, max);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--seed") {
            args.fuzz.seed = static_cast<uint64_t>(
                int_value(i, a, 0, std::numeric_limits<int64_t>::max()));
        } else if (a == "--count") {
            args.fuzz.count =
                static_cast<int>(int_value(i, a, 1, 1000000000));
        } else if (a == "--jobs") {
            args.fuzz.jobs = static_cast<int>(int_value(i, a, 1, 4096));
        } else if (a == "--depth") {
            args.fuzz.gen.max_depth =
                static_cast<int>(int_value(i, a, 1, 64));
        } else if (a == "--lanes") {
            args.fuzz.gen.lanes =
                static_cast<int>(int_value(i, a, 1, 1024));
        } else if (a == "--stages") {
            args.fuzz.gen.stages =
                static_cast<int>(int_value(i, a, 1, 64));
        } else if (a == "--envs") {
            args.fuzz.oracles.envs =
                static_cast<int>(int_value(i, a, 1, 1024));
        } else if (a == "--timeout-ms") {
            args.fuzz.oracles.timeout_ms = static_cast<int>(
                int_value(i, a, 1, std::numeric_limits<int>::max()));
        } else if (a == "--target") {
            const std::string t = value(i, a);
            if (t == "hvx") {
                args.fuzz.oracles.hvx = true;
                args.fuzz.oracles.neon = false;
            } else if (t == "neon") {
                args.fuzz.oracles.hvx = false;
                args.fuzz.oracles.neon = true;
            } else if (t == "both") {
                args.fuzz.oracles.hvx = true;
                args.fuzz.oracles.neon = true;
            } else if (t == "jit") {
                // Native tier: hvx selection plus the jit-vs-interp
                // oracle over whatever it selected.
                args.fuzz.oracles.hvx = true;
                args.fuzz.oracles.neon = false;
                args.fuzz.oracles.jit = true;
            } else {
                usage("unknown --target '" + t + "'");
            }
        } else if (a == "--corpus-dir") {
            args.fuzz.corpus_dir = value(i, a);
        } else if (a == "--rules") {
            args.fuzz.oracles.rules_file = value(i, a);
        } else if (a == "--replay") {
            args.replay = value(i, a);
        } else if (a == "--replay-frames") {
            args.replay_frames = value(i, a);
        } else if (a == "--no-minimize") {
            args.fuzz.minimize = false;
        } else if (a == "--inject-sub-bug") {
            args.fuzz.oracles.inject_sub_swap_bug = true;
        } else if (a == "--inject-spin") {
            args.fuzz.oracles.inject_spin = true;
        } else if (a == "--quiet") {
            args.quiet = true;
        } else {
            usage("unknown argument '" + a + "'");
        }
    }
    // Checked at parse time: inside check_expr a missing deadline
    // would disarm the spin, silently turning the drill into a no-op.
    if (args.fuzz.oracles.inject_spin &&
        args.fuzz.oracles.timeout_ms <= 0)
        usage("--inject-spin requires --timeout-ms");
    return args;
}

int
replay(const Args &args)
{
    std::vector<fuzz::CorpusEntry> entries;
    try {
        entries = fuzz::load_corpus(args.replay);
    } catch (const UserError &) {
        entries.push_back(fuzz::load_corpus_file(args.replay));
    }
    int failures = 0;
    for (const fuzz::CorpusEntry &entry : entries) {
        fuzz::CheckResult res =
            fuzz::check_expr(entry.expr, args.fuzz.oracles);
        if (res.ok()) {
            if (!args.quiet)
                std::cout << "ok   " << entry.path << "\n";
            continue;
        }
        ++failures;
        std::cout << "FAIL " << entry.path << "\n     oracle "
                  << res.divergence->oracle << ": "
                  << res.divergence->detail << "\n     "
                  << hir::to_sexpr(entry.expr) << "\n";
    }
    std::cout << entries.size() - failures << "/" << entries.size()
              << " corpus entries pass\n";
    return failures == 0 ? 0 : 1;
}

std::string
slurp_bytes(const std::filesystem::path &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw UserError("cannot read frame file: " + path.string());
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

int
replay_frames(const Args &args)
{
    namespace fs = std::filesystem;
    const fs::path root = args.replay_frames;
    std::vector<fs::path> files;
    if (fs::is_directory(root)) {
        for (const auto &e : fs::directory_iterator(root))
            if (e.is_regular_file() &&
                e.path().extension() == ".frame")
                files.push_back(e.path());
        std::sort(files.begin(), files.end());
    } else if (fs::is_regular_file(root)) {
        files.push_back(root);
    } else {
        throw UserError("no frame file or directory at: " +
                        root.string());
    }
    if (files.empty())
        throw UserError("no .frame files under: " + root.string());
    int failures = 0;
    for (const fs::path &path : files) {
        const std::string name = path.filename().string();
        const serve::FrameDrill drill =
            serve::drill_frames(slurp_bytes(path));
        // The filename carries the verdict: ok-* must decode cleanly
        // to requests, anything else must fail structurally. Either
        // way drill_frames returning at all is the headline property.
        std::string why;
        if (name.rfind("ok-", 0) == 0) {
            if (drill.hostile())
                why = "expected clean decode, got: " + drill.error;
            else if (drill.requests < 1 || drill.requests != drill.frames)
                why = "expected every frame to parse as a request";
        } else {
            if (!drill.hostile())
                why = "hostile bytes decoded without an error";
            else if (drill.error.empty())
                why = "hostile bytes produced no error message";
        }
        if (why.empty()) {
            if (!args.quiet)
                std::cout << "ok   " << path.string() << "\n";
            continue;
        }
        ++failures;
        std::cout << "FAIL " << path.string() << "\n     " << why
                  << "\n";
    }
    std::cout << files.size() - failures << "/" << files.size()
              << " frame files pass\n";
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Args args = parse_args(argc, argv);
        if (!args.replay.empty() && !args.replay_frames.empty())
            usage("--replay and --replay-frames are exclusive");
        if (!args.replay.empty())
            return replay(args);
        if (!args.replay_frames.empty())
            return replay_frames(args);
        const fuzz::FuzzReport report = fuzz::run(args.fuzz);
        if (!args.quiet || report.divergences() > 0)
            std::cout << report.summary();
        return report.divergences() == 0 ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "rake_fuzz: " << e.what() << "\n";
        return 2;
    }
}
