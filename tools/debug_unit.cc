/**
 * @file
 * Focused synthesis repros, runnable against either backend:
 *
 *   debug_unit [--target hvx|neon] [--greedy] [--timeout-ms N]
 *              [--cache-dir PATH] [--rules PATH] [--no-rules]
 *
 * Probes the shapes that historically regressed — the conv3x3a32
 * inner sum, scalar-weight chains of increasing length, and the
 * 3-tap widening convolution — printing the selected listing and its
 * cost so a change in selection is immediately visible.
 */
#include <iostream>

#include "hir/builder.h"
#include "hvx/cost.h"
#include "hvx/printer.h"
#include "neon/cost.h"
#include "neon/select.h"
#include "pipeline/report.h"
#include "support/deadline.h"
#include "synth/persist.h"
#include "synth/rake.h"
#include "synth/rules.h"

using namespace rake;
using namespace rake::hir;

namespace {

struct Probe {
    std::string name;
    ExprPtr expr;
};

std::vector<Probe>
probes()
{
    const int L = 128;
    auto ld = [&](int dx, int dy) {
        return load(0, ScalarType::UInt8, L, dx, dy);
    };
    auto w16 = [&](HExpr e) { return cast(ScalarType::UInt16, e); };
    auto t2 = [&](int dx, int dy, int w) {
        return cast(ScalarType::Int32,
                    cast(ScalarType::Int16, ld(dx, dy))) *
               w;
    };

    std::vector<Probe> out;

    // Full conv3x3a32 inner sum.
    {
        const int w[3][3] = {{1, -2, 1}, {-2, 12, -2}, {1, -2, 1}};
        HExpr sum;
        for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx) {
                HExpr term = t2(dx, dy, w[dy + 1][dx + 1] * 37);
                sum = sum.defined() ? sum + term : term;
            }
        out.push_back({"conv9", sum.ptr()});
    }

    // Scalar-weight chains of increasing length.
    for (auto weights : std::vector<std::vector<int>>{
             {1, 444}, {37, -74}, {37, -74, 444}, {37, -74, 37, -74, 444}}) {
        HExpr sum;
        int dx = 0;
        for (int w : weights) {
            HExpr term = t2(dx++, 0, w);
            sum = sum.defined() ? sum + term : term;
        }
        out.push_back(
            {"weights n=" + std::to_string(weights.size()), sum.ptr()});
    }

    // 3-tap widening convolution (the old debug_unit2 repro).
    out.push_back({"widening conv3",
                   (w16(ld(-1, -1)) + w16(ld(-1, 0)) * 2 +
                    w16(ld(-1, 1)))
                       .ptr()});

    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const pipeline::BenchArgs args =
        pipeline::parse_bench_args(argc, argv);
    const int timeout_ms =
        resolve_timeout_ms(args.timeout_ms, "RAKE_TIMEOUT_MS");
    const std::string cache_dir =
        synth::resolve_cache_dir(args.cache_dir);
    const std::string rules_file =
        synth::resolve_rules_file(args.rules, args.no_rules);

    int failures = 0;
    for (const Probe &p : probes()) {
        std::cout << "=== " << p.name << " (" << args.target
                  << (args.greedy ? ", greedy" : "") << ")\n";
        if (args.target == "hvx") {
            synth::RakeOptions opts;
            opts.cache_dir = cache_dir;
            opts.rules_file = rules_file;
            if (timeout_ms > 0)
                opts.deadline = Deadline::after_ms(timeout_ms);
            auto r = synth::select_instructions(p.expr, opts);
            if (!r) {
                std::cout << "FAILED\n";
                ++failures;
                continue;
            }
            if (r->degraded)
                std::cout << "(timed out; greedy degradation)\n";
            std::cout << hvx::to_listing(r->instr)
                      << to_string(hvx::cost_of(r->instr, opts.target))
                      << "\n";
        } else {
            neon::SelectOptions opts;
            opts.greedy = args.greedy;
            opts.cache_dir = cache_dir;
            opts.rules_file = rules_file;
            if (timeout_ms > 0)
                opts.deadline = Deadline::after_ms(timeout_ms);
            synth::SynthStatus status = synth::SynthStatus::Ok;
            auto n = neon::select_instructions(p.expr, opts, &status);
            if (!n) {
                std::cout << "FAILED\n";
                ++failures;
                continue;
            }
            if (status == synth::SynthStatus::TimedOut)
                std::cout << "(timed out; greedy degradation)\n";
            std::cout << neon::to_listing(*n)
                      << to_string(neon::cost_of(*n, neon::Target{}))
                      << "\n";
        }
    }
    return failures == 0 ? 0 : 1;
}
