#include <iostream>
#include "hir/builder.h"
#include "hir/printer.h"
#include "hvx/printer.h"
#include "uir/printer.h"
#include "hir/simplify.h"
#include "synth/rake.h"
using namespace rake;
using namespace rake::hir;
int main() {
    const int L = 128;
    auto t2 = [&](int dx, int dy, int w) {
        return cast(ScalarType::Int32, cast(ScalarType::Int16, load(0, ScalarType::UInt8, L, dx, dy))) * w;
    };
    auto t = [&](int dx, int w) { return t2(dx, 0, w); };
    {
        // full conv3x3a32 inner sum
        const int w[3][3] = {{1, -2, 1}, {-2, 12, -2}, {1, -2, 1}};
        HExpr sum;
        for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx) {
                HExpr term = t2(dx, dy, w[dy+1][dx+1] * 37);
                sum = sum.defined() ? sum + term : term;
            }
        synth::RakeOptions opts;
        auto r = synth::select_instructions(sum.ptr(), opts);
        std::cout << "conv9: " << (r ? "OK" : "FAILED") << "\n";
        if (r) std::cout << hvx::to_listing(r->instr);
    }
    for (auto weights : std::vector<std::vector<int>>{{1,444}, {37,-74}, {37,-74,444}, {37,-74,37,-74,444}}) {
        HExpr sum;
        int dx = 0;
        for (int w : weights) {
            HExpr term = t(dx++, w);
            sum = sum.defined() ? sum + term : term;
        }
        synth::RakeOptions opts;
        auto r = synth::select_instructions(sum.ptr(), opts);
        std::cout << "weights n=" << weights.size() << ": "
                  << (r ? "OK" : "FAILED") << "\n";
        if (r) std::cout << hvx::to_listing(r->instr);
    }
    return 0;
}
