#include <cstdio>
#include <iostream>
#include "pipeline/benchmarks.h"
#include "sim/linearize.h"
int main(int argc, char** argv) {
    using namespace rake;
    using namespace rake::pipeline;
    CompileOptions opts;
    opts.validate = false;
    for (const Benchmark& b : benchmark_suite()) {
        if (argc > 1 && b.name != std::string(argv[1])) continue;
        BenchmarkResult r = compile_benchmark(b, opts);
        for (const auto& ec : r.exprs) {
            auto dump = [&](const char* tag, const hvx::InstrPtr& code,
                            const sim::ScheduleStats& st) {
                hvx::Cost c = hvx::cost_of(code, opts.rake.target);
                printf("%-16s %-12s %-9s II=%-3d insns=%-3d  ld=%d mpy=%d sh=%d pm=%d alu=%d\n",
                       b.name.c_str(), ec.kernel->name.c_str(), tag,
                       st.initiation_interval, st.instructions,
                       c.per_resource[0], c.per_resource[1],
                       c.per_resource[2], c.per_resource[3],
                       c.per_resource[4]);
            };
            dump("baseline", ec.baseline, ec.baseline_sched);
            dump("rake", ec.rake ? ec.rake : ec.baseline, ec.rake_sched);
        }
    }
    return 0;
}
