#include <iostream>
#include "pipeline/benchmarks.h"
#include "hir/printer.h"
#include "hvx/printer.h"
#include "uir/printer.h"
#include "synth/rake.h"
#include "baseline/halide_optimizer.h"
#include "hir/simplify.h"
int main(int argc, char** argv) {
    using namespace rake;
    std::string name = argc > 1 ? argv[1] : "box_blur";
    const auto& b = pipeline::benchmark(name);
    for (const auto& ke : b.exprs) {
        std::cerr << "expr " << ke.name << ": " << hir::to_string(ke.expr) << "\n";
        synth::RakeOptions opts;
        // Stage-by-stage for debugging
        hir::ExprPtr norm = hir::simplify(ke.expr);
        std::cerr << "simplified: " << hir::to_string(norm) << "\n";
        synth::Spec spec = synth::Spec::from_expr(norm);
        synth::ExamplePool pool(spec, 1);
        synth::Verifier verifier(spec, pool);
        std::cerr << "lifting...\n";
        auto lifted = synth::lift_to_uir(verifier);
        std::cerr << "lifted: " << uir::to_string(lifted.expr) << "\n";
        std::cerr << "baseline...\n";
        auto base = baseline::select_instructions(norm, opts.target);
        std::cerr << hvx::to_listing(base) << "\n";
        std::cerr << "lowering...\n";
        auto low = synth::lower_to_hvx(verifier, lifted.expr, opts.target, opts.lower);
        if (!low) { std::cerr << "LOWERING FAILED\n"; continue; }
        std::cerr << hvx::to_listing(low->instr) << "\n";
    }
    return 0;
}
