#include <iostream>
#include "hir/builder.h"
#include "hvx/printer.h"
#include "hvx/cost.h"
#include "synth/rake.h"
using namespace rake; using namespace rake::hir;
int main() {
    const int L = 128;
    auto ld = [&](int dx,int dy){ return load(0, ScalarType::UInt8, L, dx, dy); };
    auto w16=[&](HExpr e){ return cast(ScalarType::UInt16, e); };
    HExpr e = w16(ld(-1,-1)) + w16(ld(-1,0)) * 2 + w16(ld(-1,1));
    synth::RakeOptions opts;
    auto r = synth::select_instructions(e.ptr(), opts);
    if (!r) { std::cout << "FAILED\n"; return 1; }
    std::cout << hvx::to_listing(r->instr)
              << to_string(hvx::cost_of(r->instr, opts.target)) << "\n";
    return 0;
}
