/**
 * @file
 * Offline rule miner: turn solved syntheses into a verified,
 * parameterized rewrite-rule table (synth/rules.h).
 *
 * Input pairs come from two places, freely combined:
 *
 *  - `--cache-dir PATH`: every solved entry of a persistent synthesis
 *    cache (synth/persist.h) whose version keys match the *current*
 *    backend versions. Stale entries are skipped — a rule must never
 *    outlive the grammar that produced its witness.
 *  - `--corpus-dir PATH`: every reproducer of a fuzz corpus
 *    (fuzz/corpus.h), solved here with the requested backend(s); the
 *    corpus is a distilled sample of shapes the generator considers
 *    interesting, so its solutions generalize well.
 *
 * Each pair is anti-unified into a candidate rule (constants and leaf
 * operands become typed holes), verified once over symbolic lanes —
 * by the z3 encoder where the backend has one, else by exhaustive
 * corner-lane evaluation — and written to `--out` under the same
 * version-key discipline as the cache. Refuted candidates back off
 * toward concrete and are dropped if still refuted.
 *
 *   rake_mine_rules --out PATH [--cache-dir PATH] [--corpus-dir PATH]
 *                   [--target hvx|neon|all] [--check-envs N]
 *                   [--seed N] [--timeout-ms N] [--json PATH]
 */
#include <iostream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "backend/hvx_backend.h"
#include "backend/neon_backend.h"
#include "fuzz/corpus.h"
#include "hir/printer.h"
#include "hir/simplify.h"
#include "hvx/sexpr.h"
#include "pipeline/report.h"
#include "support/deadline.h"
#include "support/error.h"
#include "support/parse.h"
#include "synth/persist.h"
#include "synth/rake.h"
#include "synth/rules.h"

namespace {

using namespace rake;

struct MinerArgs {
    std::string out;
    std::string cache_dir;
    std::string corpus_dir;
    std::string target = "all"; ///< hvx | neon | all
    std::string json;
    int check_envs = 16;
    uint64_t seed = 1;
    int timeout_ms = 0; ///< per-query budget when solving the corpus
};

MinerArgs
parse_args(int argc, char **argv)
{
    MinerArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *what) {
            RAKE_USER_CHECK(i + 1 < argc, a << " needs " << what);
            return std::string(argv[++i]);
        };
        if (a == "--out") {
            args.out = value("a path");
        } else if (a == "--cache-dir") {
            args.cache_dir = value("a path");
        } else if (a == "--corpus-dir") {
            args.corpus_dir = value("a path");
        } else if (a == "--target") {
            args.target = value("a value");
        } else if (a == "--json") {
            args.json = value("a path");
        } else if (a == "--check-envs") {
            args.check_envs = static_cast<int>(parse_int_knob(
                value("a value").c_str(), "--check-envs", 1, 1 << 16));
        } else if (a == "--seed") {
            args.seed = static_cast<uint64_t>(parse_int_knob(
                value("a value").c_str(), "--seed", 0,
                std::numeric_limits<int64_t>::max()));
        } else if (a == "--timeout-ms") {
            args.timeout_ms = static_cast<int>(parse_int_knob(
                value("a value").c_str(), "--timeout-ms", 1,
                std::numeric_limits<int>::max()));
        } else {
            RAKE_USER_CHECK(false, "unknown flag: " << a);
        }
    }
    RAKE_USER_CHECK(!args.out.empty(), "--out PATH is required");
    RAKE_USER_CHECK(args.target == "hvx" || args.target == "neon" ||
                        args.target == "all",
                    "unknown target: " << args.target
                                       << " (expected hvx, neon or all)");
    RAKE_USER_CHECK(!args.cache_dir.empty() || !args.corpus_dir.empty(),
                    "nothing to mine: give --cache-dir and/or "
                    "--corpus-dir");
    return args;
}

/** Solved pairs per backend, deduplicated on (expr, instr). */
struct PairSet {
    std::vector<synth::MinedPair> pairs;
    std::set<std::string> seen;

    void
    add(const std::string &expr, const std::string &instr)
    {
        if (expr.empty() || instr.empty())
            return;
        if (!seen.insert(expr + "\n" + instr).second)
            return;
        pairs.push_back({expr, instr});
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using pipeline::Json;

    MinerArgs args;
    try {
        args = parse_args(argc, argv);
    } catch (const UserError &e) {
        std::cerr << "rake_mine_rules: " << e.what() << "\n";
        return 2;
    }

    const bool want_hvx = args.target != "neon";
    const bool want_neon = args.target != "hvx";

    // Backend instances carry the current version keys and the
    // verification machinery; the targets must outlive them.
    hvx::Target hvx_target;
    neon::Target neon_target;
    auto hvx_isa = backend::make_hvx_backend(hvx_target);
    auto neon_isa = backend::make_neon_backend(neon_target);

    PairSet hvx_pairs, neon_pairs;
    int cache_entries = 0, cache_stale = 0;
    int corpus_exprs = 0, corpus_unsolved = 0;

    if (!args.cache_dir.empty()) {
        for (const synth::CacheEntryView &e :
             synth::scan_cache_dir(args.cache_dir)) {
            ++cache_entries;
            if (e.instr.empty())
                continue; // persisted no-solution: nothing to mine
            if (e.backend == "hvx" && want_hvx) {
                if (e.grammar != synth::kHvxGrammarVersion ||
                    e.cost_model != synth::kHvxCostModelVersion) {
                    ++cache_stale;
                    continue;
                }
                hvx_pairs.add(e.expr, e.instr);
            } else if (e.backend == neon_isa->name() && want_neon) {
                if (e.grammar != neon_isa->grammar_version() ||
                    e.cost_model != neon_isa->cost_model_version()) {
                    ++cache_stale;
                    continue;
                }
                neon_pairs.add(e.expr, e.instr);
            }
        }
    }

    if (!args.corpus_dir.empty()) {
        std::vector<fuzz::CorpusEntry> corpus;
        try {
            corpus = fuzz::load_corpus(args.corpus_dir);
        } catch (const UserError &e) {
            std::cerr << "rake_mine_rules: " << e.what() << "\n";
            return 2;
        }
        for (const fuzz::CorpusEntry &entry : corpus) {
            ++corpus_exprs;
            const hir::ExprPtr normalized = hir::simplify(entry.expr);
            const std::string expr = hir::to_sexpr(normalized);
            bool solved = false;
            // Solve with the same engine the rules will later stand in
            // for. Reproducers that fail or time out teach us nothing.
            synth::RakeOptions opts;
            opts.use_cache = false;
            opts.seed = args.seed;
            if (args.timeout_ms > 0)
                opts.deadline = Deadline::after_ms(args.timeout_ms);
            if (want_hvx) {
                try {
                    auto r = synth::select_instructions(entry.expr, opts);
                    if (r && r->instr && !r->degraded &&
                        r->status == synth::SynthStatus::Ok) {
                        hvx_pairs.add(expr, hvx::to_sexpr(r->instr));
                        solved = true;
                    }
                } catch (const UserError &) {
                }
            }
            if (want_neon) {
                try {
                    // Fresh backend per run: it carries per-run state.
                    neon::Target machine;
                    auto isa = backend::make_neon_backend(machine);
                    auto r = synth::select_instructions_for(entry.expr,
                                                            *isa, opts);
                    if (r && r->instr && !r->degraded &&
                        r->status == synth::SynthStatus::Ok) {
                        neon_pairs.add(expr,
                                       isa->instr_to_sexpr(r->instr));
                        solved = true;
                    }
                } catch (const UserError &) {
                }
            }
            if (!solved)
                ++corpus_unsolved;
        }
    }

    synth::MineOptions mopts;
    mopts.check_envs = args.check_envs;
    mopts.seed = args.seed;

    std::vector<synth::RuleTable::Section> sections;
    synth::MineStats hvx_stats, neon_stats;
    if (want_hvx && !hvx_pairs.pairs.empty()) {
        sections.push_back(synth::mine_rules(
            *hvx_isa, synth::kHvxGrammarVersion,
            synth::kHvxCostModelVersion, hvx_pairs.pairs, mopts,
            &hvx_stats));
    }
    if (want_neon && !neon_pairs.pairs.empty()) {
        sections.push_back(synth::mine_rules(
            *neon_isa, neon_isa->grammar_version(),
            neon_isa->cost_model_version(), neon_pairs.pairs, mopts,
            &neon_stats));
    }

    if (!synth::write_rule_table(args.out, sections)) {
        std::cerr << "rake_mine_rules: cannot write " << args.out
                  << "\n";
        return 1;
    }

    int total_rules = 0;
    for (const auto &s : sections)
        total_rules += static_cast<int>(s.rules.size());

    auto report = [](const char *name, const synth::MineStats &s,
                     size_t rules) {
        std::cout << "  " << name << ": " << s.pairs << " pairs -> "
                  << rules << " rules (" << s.proved_z3 << " z3-proven, "
                  << s.proved_eval << " eval-proven, " << s.refuted
                  << " refuted, " << s.duplicates << " duplicates, "
                  << s.skipped << " skipped)\n";
    };
    std::cout << "mined " << total_rules << " rules into " << args.out
              << "\n";
    if (cache_entries > 0)
        std::cout << "  cache: " << cache_entries << " entries, "
                  << cache_stale << " stale\n";
    if (corpus_exprs > 0)
        std::cout << "  corpus: " << corpus_exprs << " reproducers, "
                  << corpus_unsolved << " unsolved\n";
    for (const auto &s : sections) {
        if (s.backend == "hvx")
            report("hvx", hvx_stats, s.rules.size());
        else
            report(s.backend.c_str(), neon_stats, s.rules.size());
    }

    if (!args.json.empty()) {
        auto stats_json = [](const synth::MineStats &s, size_t rules) {
            Json j;
            j.put("pairs", s.pairs)
                .put("rules", static_cast<int>(rules))
                .put("proved_z3", s.proved_z3)
                .put("proved_eval", s.proved_eval)
                .put("refuted", s.refuted)
                .put("duplicates", s.duplicates)
                .put("skipped", s.skipped);
            return j.to_string();
        };
        Json j;
        j.put("driver", std::string("rake_mine_rules"))
            .put("out", args.out)
            .put("rules", total_rules)
            .put("cache_entries", cache_entries)
            .put("cache_stale", cache_stale)
            .put("corpus_exprs", corpus_exprs)
            .put("corpus_unsolved", corpus_unsolved);
        for (const auto &s : sections) {
            const bool is_hvx = s.backend == "hvx";
            j.put_raw(s.backend,
                      stats_json(is_hvx ? hvx_stats : neon_stats,
                                 s.rules.size()));
        }
        pipeline::write_text_file(args.json, j.to_string() + "\n");
        std::cout << "wrote " << args.json << "\n";
    }
    return 0;
}
