/**
 * @file
 * Thin client for the compile server (serve/client.h).
 *
 *   rake_client [--socket PATH] [--target hvx|neon]
 *               [--expr SEXPR | --bench NAME | --suite]
 *               [--repeat N] [--timeout-ms N] [--no-degrade]
 *               [--selections PATH] [--metrics] [--ping]
 *
 * Query sources: one expression on the command line, one named
 * benchmark's expressions, or the full 21-benchmark suite. --repeat
 * duplicates the batch N times *within one submission* — the way to
 * demonstrate (and CI-assert) cross-request in-flight dedupe.
 * --selections writes one `name status tier instr` line per response,
 * in request order, so cold and warm runs can be diffed byte-for-byte.
 * --metrics fetches the server's counter JSON after the batch (or on
 * its own) and prints it to stdout.
 *
 * Exit status: 0 on success (including degraded answers — those are
 * the deadline contract, not failures), 1 when any response has
 * status `error`, 2 on usage/transport errors.
 */
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "hir/printer.h"
#include "hir/sexpr.h"
#include "pipeline/benchmarks.h"
#include "pipeline/report.h"
#include "serve/client.h"
#include "support/error.h"
#include "support/parse.h"

namespace {

using namespace rake;

struct ClientArgs {
    serve::ClientOptions client;
    std::string target = "hvx";
    std::string expr;
    std::string bench;
    bool suite = false;
    int repeat = 1;
    bool metrics = false;
    bool ping = false;
    std::string selections;
};

ClientArgs
parse_args(int argc, char **argv)
{
    ClientArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *what) {
            RAKE_USER_CHECK(i + 1 < argc, a << " needs " << what);
            return std::string(argv[++i]);
        };
        if (a == "--socket") {
            args.client.socket_path = value("a path");
        } else if (a == "--target") {
            args.target = value("a value");
        } else if (a == "--expr") {
            args.expr = value("an s-expression");
        } else if (a == "--bench") {
            args.bench = value("a name");
        } else if (a == "--suite") {
            args.suite = true;
        } else if (a == "--repeat") {
            args.repeat = static_cast<int>(parse_int_knob(
                value("a value").c_str(), "--repeat", 1, 1 << 10));
        } else if (a == "--timeout-ms") {
            args.client.timeout_ms = static_cast<int>(parse_int_knob(
                value("a value").c_str(), "--timeout-ms", 1,
                std::numeric_limits<int>::max()));
        } else if (a == "--no-degrade") {
            args.client.degrade_locally = false;
        } else if (a == "--selections") {
            args.selections = value("a path");
        } else if (a == "--metrics") {
            args.metrics = true;
        } else if (a == "--ping") {
            args.ping = true;
        } else {
            RAKE_USER_CHECK(false, "unknown flag: " << a);
        }
    }
    RAKE_USER_CHECK(args.target == "hvx" || args.target == "neon",
                    "unknown target: " << args.target
                                       << " (expected hvx or neon)");
    const int sources = (!args.expr.empty() ? 1 : 0) +
                        (!args.bench.empty() ? 1 : 0) +
                        (args.suite ? 1 : 0);
    RAKE_USER_CHECK(sources <= 1,
                    "give at most one of --expr, --bench, --suite");
    RAKE_USER_CHECK(sources == 1 || args.metrics || args.ping,
                    "nothing to do: give --expr, --bench, --suite, "
                    "--metrics or --ping");
    return args;
}

struct NamedQuery {
    std::string name;
    std::string expr;
};

std::vector<NamedQuery>
collect_queries(const ClientArgs &args)
{
    std::vector<NamedQuery> queries;
    if (!args.expr.empty()) {
        // Parse locally first: a typo should be a usage error here,
        // not a server-side `error` response.
        hir::parse_expr(args.expr);
        queries.push_back({"expr", args.expr});
    } else if (!args.bench.empty()) {
        const pipeline::Benchmark &b = pipeline::benchmark(args.bench);
        for (const pipeline::KernelExpr &k : b.exprs)
            queries.push_back(
                {b.name + "/" + k.name, hir::to_sexpr(k.expr)});
    } else if (args.suite) {
        for (const pipeline::Benchmark &b : pipeline::benchmark_suite())
            for (const pipeline::KernelExpr &k : b.exprs)
                queries.push_back(
                    {b.name + "/" + k.name, hir::to_sexpr(k.expr)});
    }
    return queries;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const ClientArgs args = parse_args(argc, argv);
        serve::RemoteSelect remote(args.client);

        if (args.ping) {
            RAKE_USER_CHECK(remote.ping(), "server did not answer ping");
            std::cout << "pong\n";
        }

        const std::vector<NamedQuery> queries = collect_queries(args);
        bool any_error = false;
        if (!queries.empty()) {
            std::vector<serve::Request> batch;
            for (int r = 0; r < args.repeat; ++r) {
                for (const NamedQuery &q : queries) {
                    serve::Request request;
                    request.backend = args.target;
                    request.expr = q.expr;
                    batch.push_back(std::move(request));
                }
            }
            const std::vector<serve::Response> responses =
                remote.select_batch(std::move(batch));

            int ok = 0, no_solution = 0, degraded_like = 0, errors = 0;
            std::string lines;
            for (size_t i = 0; i < responses.size(); ++i) {
                const serve::Response &resp = responses[i];
                const NamedQuery &q = queries[i % queries.size()];
                if (resp.status == "ok")
                    ++ok;
                else if (resp.status == "no_solution")
                    ++no_solution;
                else if (resp.degraded_like_timeout())
                    ++degraded_like;
                else
                    ++errors;
                if (resp.status == "error")
                    std::cerr << "rake_client: " << q.name << ": "
                              << resp.error << "\n";
                lines += q.name + " " + resp.status + " " +
                         (resp.tier.empty() ? "-" : resp.tier) + " " +
                         (resp.instr.empty() ? "-" : resp.instr) + "\n";
            }
            if (!args.selections.empty())
                pipeline::write_text_file(args.selections, lines);
            else
                std::cout << lines;
            std::cout << "rake_client: " << responses.size()
                      << " responses (" << ok << " ok, " << no_solution
                      << " no_solution, " << degraded_like
                      << " degraded, " << errors << " errors)\n";
            any_error = errors > 0;
        }

        if (args.metrics)
            std::cout << remote.metrics() << "\n";
        return any_error ? 1 : 0;
    } catch (const UserError &e) {
        std::cerr << "rake_client: " << e.what() << "\n";
        return 2;
    }
}
